// Tests for the compressed swap tier: CompressedPool admission/budget/LRU
// mechanics, TierManager routing (pool vs disk, pool-full overflow,
// pool-faulted fallback, background writeback), the SwapDevice release-hook
// integration, and full-stack runs (counters exported, deterministic replay,
// disabled tier == no TierManager at all).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/node.hpp"
#include "fault/fault_injector.hpp"
#include "harness/runner.hpp"
#include "tier/compressed_pool.hpp"
#include "tier/tier_manager.hpp"

namespace apsim {
namespace {

// ---------------------------------------------------------------------------
// CompressedPool

CompressedPoolParams pool_params(std::int64_t budget_bytes,
                                 TierRatioModel model = TierRatioModel::kText,
                                 std::uint64_t seed = 42) {
  CompressedPoolParams p;
  p.budget_bytes = budget_bytes;
  p.model = model;
  p.seed = seed;
  return p;
}

TEST(CompressedPool, RatiosAreDeterministicInSeedAndSlot) {
  CompressedPool a(pool_params(1 << 20));
  CompressedPool b(pool_params(1 << 20));
  CompressedPool c(pool_params(1 << 20, TierRatioModel::kText, 43));
  bool any_differs = false;
  for (SwapSlot s = 0; s < 256; ++s) {
    EXPECT_DOUBLE_EQ(a.ratio_of(s), b.ratio_of(s));
    if (a.ratio_of(s) != c.ratio_of(s)) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds produced identical ratios";
}

TEST(CompressedPool, ModelsProduceTheirDocumentedRanges) {
  CompressedPool text(pool_params(1 << 20, TierRatioModel::kText));
  CompressedPool incompressible(
      pool_params(1 << 20, TierRatioModel::kIncompressible));
  CompressedPool zero(pool_params(1 << 20, TierRatioModel::kZeroFilled));
  CompressedPool mixed(pool_params(1 << 20, TierRatioModel::kMixed));
  double zero_sum = 0.0;
  for (SwapSlot s = 0; s < 512; ++s) {
    EXPECT_GE(text.ratio_of(s), 0.25);
    EXPECT_LE(text.ratio_of(s), 0.55);
    EXPECT_GE(incompressible.ratio_of(s), 0.92);
    EXPECT_GT(mixed.ratio_of(s), 0.0);
    EXPECT_LE(mixed.ratio_of(s), 1.0);
    zero_sum += zero.ratio_of(s);
  }
  // Zero-dominated pages nearly vanish on average.
  EXPECT_LT(zero_sum / 512.0, 0.25);
}

TEST(CompressedPool, ParseRatioModelRoundTripsAndRejectsUnknown) {
  for (TierRatioModel model :
       {TierRatioModel::kMixed, TierRatioModel::kText,
        TierRatioModel::kZeroFilled, TierRatioModel::kIncompressible}) {
    EXPECT_EQ(parse_tier_ratio_model(to_string(model)), model);
  }
  EXPECT_THROW((void)parse_tier_ratio_model("lzma"), std::invalid_argument);
}

TEST(CompressedPool, StoreChargesBudgetAndRejectsWhenFull) {
  // kText compresses to [0.25, 0.55] of 4096 = at most ~2253 bytes/page.
  CompressedPool pool(pool_params(8 * 1024));
  std::int64_t stored = 0;
  SwapSlot s = 0;
  while (pool.store(s)) {
    ++stored;
    ++s;
  }
  EXPECT_GE(stored, 3);  // at least 3 pages fit in 8 KB at <= 0.55 ratio
  EXPECT_EQ(pool.stats().rejects_budget, 1u);
  EXPECT_LE(pool.bytes_used(), pool.budget_bytes());
  EXPECT_EQ(pool.entry_count(), stored);
  EXPECT_EQ(pool.stats().pages_stored, static_cast<std::uint64_t>(stored));

  // Dropping entries releases their budget; the rejected slot then fits
  // (three kText pages free >= 3 KB, more than any single page needs).
  EXPECT_TRUE(pool.drop(0));
  EXPECT_TRUE(pool.drop(1));
  EXPECT_TRUE(pool.drop(2));
  EXPECT_FALSE(pool.contains(0));
  EXPECT_TRUE(pool.store(s).has_value());
}

TEST(CompressedPool, RejectsIncompressiblePages) {
  CompressedPool pool(pool_params(1 << 20, TierRatioModel::kIncompressible));
  for (SwapSlot s = 0; s < 64; ++s) {
    EXPECT_FALSE(pool.store(s).has_value());
  }
  EXPECT_EQ(pool.stats().rejects_ratio, 64u);
  EXPECT_EQ(pool.entry_count(), 0);
}

TEST(CompressedPool, WritebackPopsColdestFirst) {
  CompressedPool pool(pool_params(1 << 20));
  for (SwapSlot s = 0; s < 4; ++s) ASSERT_TRUE(pool.store(s));
  pool.touch(0);  // 0 becomes hottest; coldest order is now 1, 2, 3, 0
  const auto batch = pool.begin_writeback(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);

  // Success drops the entry and its bytes; failure re-queues at the cold end.
  const std::int64_t before = pool.bytes_used();
  pool.finish_writeback(1, /*ok=*/true);
  EXPECT_FALSE(pool.contains(1));
  EXPECT_LT(pool.bytes_used(), before);
  pool.finish_writeback(2, /*ok=*/false);
  EXPECT_TRUE(pool.contains(2));
  const auto retry = pool.begin_writeback(1);
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(retry[0], 2);  // the failed entry rejoined at the cold end
}

TEST(CompressedPool, InvalidationDuringWritebackIsSafe) {
  CompressedPool pool(pool_params(1 << 20));
  ASSERT_TRUE(pool.store(7));
  const auto batch = pool.begin_writeback(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(pool.drop(7));  // slot freed while the write is in flight
  EXPECT_EQ(pool.bytes_used(), 0);
  pool.finish_writeback(7, /*ok=*/true);  // must be a no-op
  pool.finish_writeback(7, /*ok=*/false);
  EXPECT_EQ(pool.entry_count(), 0);
  EXPECT_EQ(pool.bytes_used(), 0);
}

TEST(CompressedPool, SlotRecycledDuringWritebackKeepsTheFreshEntry) {
  // The full lifecycle under thrash: a slot goes out for writeback, the VMM
  // frees it (drop) and reallocates it for a different page (store), and
  // only then does the old write complete. The completion must not disturb
  // the fresh entry — erasing it would leave a dangling LRU node.
  CompressedPool pool(pool_params(1 << 20));
  ASSERT_TRUE(pool.store(7));
  ASSERT_EQ(pool.begin_writeback(1).size(), 1u);
  EXPECT_TRUE(pool.drop(7));            // slot freed mid-flight...
  ASSERT_TRUE(pool.store(7));           // ...and recycled for a new page
  const std::int64_t bytes = pool.bytes_used();

  pool.finish_writeback(7, /*ok=*/true);  // stale completion: no-op
  EXPECT_TRUE(pool.contains(7));
  EXPECT_EQ(pool.bytes_used(), bytes);

  pool.finish_writeback(7, /*ok=*/false);  // stale failure: also a no-op
  EXPECT_TRUE(pool.contains(7));
  // The fresh entry must still be a well-formed LRU member: exactly one
  // writeback pop, then nothing left.
  EXPECT_EQ(pool.begin_writeback(8).size(), 1u);
  EXPECT_TRUE(pool.begin_writeback(8).empty());
  pool.finish_writeback(7, /*ok=*/true);
  EXPECT_EQ(pool.entry_count(), 0);
  EXPECT_EQ(pool.bytes_used(), 0);
}

TEST(CompressedPool, EntriesUnderWritebackAreNotHandedOutTwice) {
  CompressedPool pool(pool_params(1 << 20));
  for (SwapSlot s = 0; s < 3; ++s) ASSERT_TRUE(pool.store(s));
  const auto first = pool.begin_writeback(2);
  const auto second = pool.begin_writeback(2);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 1u);
  std::set<SwapSlot> all(first.begin(), first.end());
  all.insert(second.begin(), second.end());
  EXPECT_EQ(all.size(), 3u);
}

// ---------------------------------------------------------------------------
// TierManager

struct TierFixture {
  explicit TierFixture(TierParams params = default_params())
      : tier(sim, swap, params) {}

  static TierParams default_params() {
    TierParams p;
    p.pool_mb = 1.0;
    p.ratio_model = TierRatioModel::kText;  // always admits
    return p;
  }

  SlotRun alloc(std::int64_t n) {
    auto run = swap.alloc_run(n);
    EXPECT_TRUE(run.has_value() && run->count == n);
    return *run;
  }

  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 4096}};
  SwapDevice swap{disk, 0, 2048};
  TierManager tier;
};

TEST(TierManager, SwapOutLandsInPoolWithoutDiskIo) {
  TierFixture f;
  const SlotRun run = f.alloc(32);
  bool ok = false;
  f.tier.write(run, IoPriority::kForeground,
               [&](IoResult r) { ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.tier.pool().entry_count(), 32);
  EXPECT_EQ(f.disk.stats().blocks_written, 0u);
  // Compress cost is microseconds, not disk milliseconds.
  EXPECT_LE(f.sim.now(), 32 * f.tier.params().compress_cost + kMillisecond);
}

TEST(TierManager, SwapInHitsPoolThenFallsBackToDisk) {
  TierFixture f;
  const SlotRun pooled = f.alloc(16);
  bool wrote = false;
  f.tier.write(pooled, IoPriority::kForeground,
               [&](IoResult r) { wrote = r.ok; });
  f.sim.run();
  ASSERT_TRUE(wrote);

  bool read_ok = false;
  f.tier.read(pooled, IoPriority::kForeground,
              [&](IoResult r) { read_ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(f.tier.stats().pool_hits, 16u);
  EXPECT_EQ(f.tier.stats().pool_misses, 0u);
  EXPECT_EQ(f.disk.stats().blocks_read, 0u);

  // A run that is nowhere in the pool reads from disk.
  const SlotRun cold = f.alloc(8);
  read_ok = false;
  f.tier.read(cold, IoPriority::kForeground,
              [&](IoResult r) { read_ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(f.tier.stats().pool_misses, 8u);
  EXPECT_EQ(f.disk.stats().blocks_read, 8u);
}

TEST(TierManager, MixedRunSplitsIntoPoolAndDiskSegments) {
  TierFixture f;
  const SlotRun run = f.alloc(16);
  bool wrote = false;
  f.tier.write(run, IoPriority::kForeground,
               [&](IoResult r) { wrote = r.ok; });
  f.sim.run();
  ASSERT_TRUE(wrote);
  // Punch holes: drop the middle half of the pool entries, as if those
  // slots had been freed and re-written to disk.
  for (SwapSlot s = run.start + 4; s < run.start + 12; ++s) {
    EXPECT_TRUE(f.tier.pool().drop(s));
  }
  bool read_ok = false;
  f.tier.read(run, IoPriority::kForeground,
              [&](IoResult r) { read_ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(f.tier.stats().pool_hits, 8u);
  EXPECT_EQ(f.tier.stats().pool_misses, 8u);
  EXPECT_EQ(f.disk.stats().blocks_read, 8u);
}

TEST(TierManager, PoolFullOverflowsToDisk) {
  TierParams params = TierFixture::default_params();
  params.pool_mb = 0.0625;  // 64 KB: at ~0.25-0.55 ratio, fits ~30-60 pages
  params.writeback = false;
  TierFixture f(params);
  const SlotRun run = f.alloc(256);
  bool ok = false;
  f.tier.write(run, IoPriority::kForeground, [&](IoResult r) { ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_GT(f.tier.pool().entry_count(), 0);
  EXPECT_LT(f.tier.pool().entry_count(), 256);
  EXPECT_GT(f.tier.stats().stores_rejected, 0u);
  EXPECT_GT(f.disk.stats().blocks_written, 0u);
  EXPECT_EQ(f.tier.pool().entry_count() +
                static_cast<std::int64_t>(f.disk.stats().blocks_written),
            256);
}

TEST(TierManager, FaultedPoolFallsBackToDiskAndKeepsServingReads) {
  TierFixture f;
  FaultSpec spec = FaultSpec::parse("tier_fault p=1");
  FaultInjector injector(f.sim, FaultPlan{}.add(spec));
  // Store before the fault matters: entries stay readable.
  const SlotRun pooled = f.alloc(8);
  bool ok = false;
  f.tier.write(pooled, IoPriority::kForeground, [&](IoResult r) { ok = r.ok; });
  f.sim.run();
  ASSERT_TRUE(ok);

  f.tier.set_fault_injector(&injector, 0);
  const SlotRun faulted = f.alloc(8);
  ok = false;
  f.tier.write(faulted, IoPriority::kForeground,
               [&](IoResult r) { ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(ok);  // the write still succeeds — on disk
  EXPECT_EQ(f.tier.stats().stores_faulted, 8u);
  EXPECT_EQ(injector.stats().tier_stores_rejected, 8u);
  EXPECT_EQ(f.disk.stats().blocks_written, 8u);
  EXPECT_FALSE(f.tier.pool().contains(faulted.start));

  // Pool-resident data is RAM: injected store faults do not lose it.
  bool read_ok = false;
  f.tier.read(pooled, IoPriority::kForeground,
              [&](IoResult r) { read_ok = r.ok; });
  f.sim.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(f.tier.stats().pool_hits, 8u);
}

TEST(TierManager, WritebackDrainsColdEntriesToDiskAndQuiesces) {
  TierParams params = TierFixture::default_params();
  params.pool_mb = 0.125;  // 128 KB
  TierFixture f(params);
  // Fill past the high watermark in several writes.
  std::int64_t completed = 0;
  for (int batch = 0; batch < 4; ++batch) {
    const SlotRun run = f.alloc(32);
    f.tier.write(run, IoPriority::kForeground,
                 [&](IoResult r) { completed += r.ok ? 1 : 0; });
  }
  f.sim.run();  // must terminate: the writeback daemon stops when drained
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(f.sim.pending_events(), 0u);
  EXPECT_GT(f.tier.stats().writeback_pages, 0u);
  EXPECT_GT(f.disk.stats().blocks_written, 0u);
  EXPECT_LE(f.tier.pool().occupancy(), f.tier.params().writeback_low_frac);
  // Every page is accounted for exactly once: still pooled, written back,
  // or overflowed to disk at store time.
  EXPECT_EQ(f.tier.pool().entry_count() +
                static_cast<std::int64_t>(f.disk.stats().blocks_written),
            128);
}

TEST(TierManager, WritebackDisabledKeepsEverythingPooled) {
  TierParams params = TierFixture::default_params();
  params.pool_mb = 0.125;
  params.writeback = false;
  TierFixture f(params);
  const SlotRun run = f.alloc(128);
  f.tier.write(run, IoPriority::kForeground, [](IoResult) {});
  f.sim.run();
  EXPECT_EQ(f.tier.stats().writeback_pages, 0u);
  EXPECT_GE(f.tier.pool().occupancy(), f.tier.params().writeback_high_frac);
}

TEST(TierManager, FreeingSlotsDropsPoolEntries) {
  TierFixture f;
  const SlotRun run = f.alloc(4);
  f.tier.write(run, IoPriority::kForeground, [](IoResult) {});
  f.sim.run();
  ASSERT_EQ(f.tier.pool().entry_count(), 4);
  for (std::int64_t i = 0; i < run.count; ++i) {
    f.swap.free_slot(run.start + i);
  }
  EXPECT_EQ(f.tier.pool().entry_count(), 0);
  EXPECT_EQ(f.tier.pool().bytes_used(), 0);
  EXPECT_EQ(f.tier.pool().stats().invalidations, 4u);
}

// ---------------------------------------------------------------------------
// Node / full-stack integration

TEST(TierNode, DisabledTierConstructsNoManager) {
  Simulator sim;
  NodeParams params;
  params.vmm.total_frames = 2048;
  params.disk.num_blocks = 4096;
  Node node(sim, params, 0);
  EXPECT_EQ(node.tier(), nullptr);
  EXPECT_EQ(node.vmm().tier(), nullptr);
}

TEST(TierNode, EnabledTierWiresDownPoolBudget) {
  Simulator sim;
  NodeParams params;
  params.vmm.total_frames = 4096;
  params.disk.num_blocks = 8192;
  NodeParams tiered = params;
  tiered.tier.pool_mb = 4.0;  // 1024 pages
  Node plain(sim, params, 0);
  Node node(sim, tiered, 1);
  ASSERT_NE(node.tier(), nullptr);
  EXPECT_EQ(node.vmm().tier(), node.tier());
  EXPECT_EQ(plain.vmm().free_frames() - node.vmm().free_frames(), 1024);
  EXPECT_EQ(node.tier()->pool().budget_bytes(), 4 * 1024 * 1024);
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * kSecond;
  config.iterations_scale = 0.1;
  config.policy = PolicySet::parse("so/ao/ai/bg");
  return config;
}

TEST(TierFullStack, CountersFlowIntoRunOutcome) {
  ExperimentConfig config = small_config();
  config.tier_mb = 6.0;
  const RunOutcome out = run_gang(config);
  ASSERT_GT(out.makespan, 0);
  EXPECT_GT(out.tier_pages_stored, 0u);
  EXPECT_GT(out.tier_bytes_stored, 0u);
  EXPECT_GT(out.tier_pool_hits, 0u);
  EXPECT_GT(out.tier_compression_ratio(), 0.0);
  EXPECT_LT(out.tier_compression_ratio(), 1.0);

  const RunOutcome off = run_gang(small_config());
  EXPECT_EQ(off.tier_pages_stored, 0u);
  EXPECT_EQ(off.tier_pool_hits, 0u);
  EXPECT_EQ(off.tier_pool_misses, 0u);
  EXPECT_DOUBLE_EQ(off.tier_compression_ratio(), 1.0);
}

TEST(TierFullStack, TieredRunsAreDeterministic) {
  ExperimentConfig config = small_config();
  config.tier_mb = 6.0;
  const RunOutcome a = run_gang(config);
  const RunOutcome b = run_gang(config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
  EXPECT_EQ(a.tier_pool_hits, b.tier_pool_hits);
  EXPECT_EQ(a.tier_pool_misses, b.tier_pool_misses);
  EXPECT_EQ(a.tier_pages_stored, b.tier_pages_stored);
  EXPECT_EQ(a.tier_bytes_stored, b.tier_bytes_stored);
  EXPECT_EQ(a.tier_writeback_pages, b.tier_writeback_pages);
}

TEST(TierFullStack, ConfigValidatesTierAndRetrySettings) {
  ExperimentConfig config = small_config();
  config.tier_mb = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.tier_mb = 21.0;  // leaves < freepages_high usable frames
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.tier_mb = 6.0;
  config.validate();

  config.io_retry_limit = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.io_retry_limit = 4;
  config.io_retry_cap = config.io_retry_base - 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.io_retry_cap = config.io_retry_base;
  config.stalled_fault_retry_limit = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.stalled_fault_retry_limit = 1;
  config.write_failure_streak_limit = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.write_failure_streak_limit = 1;
  config.validate();
}

TEST(TierFullStack, RetrySettingsReachTheVmm) {
  ExperimentConfig config = small_config();
  config.io_retry_limit = 7;
  config.io_retry_base = 2 * kMillisecond;
  config.io_retry_cap = 32 * kMillisecond;
  config.stalled_fault_retry_limit = 99;
  config.write_failure_streak_limit = 5;
  const NodeParams node = config.make_node_params();
  EXPECT_EQ(node.vmm.io_retry_limit, 7);
  EXPECT_EQ(node.vmm.io_retry_base, 2 * kMillisecond);
  EXPECT_EQ(node.vmm.io_retry_cap, 32 * kMillisecond);
  EXPECT_EQ(node.vmm.stalled_fault_retry_limit, 99);
  EXPECT_EQ(node.vmm.write_failure_streak_limit, 5);
}

}  // namespace
}  // namespace apsim
