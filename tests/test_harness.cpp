// Unit and integration tests for the experiment harness: configuration
// mapping, the gang/batch dispatch, trace capture, and the threaded sweep.

#include <gtest/gtest.h>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

namespace apsim {
namespace {

ExperimentConfig tiny(PolicySet policy = PolicySet::original()) {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.policy = policy;
  config.quantum = 4 * kSecond;  // several switches within each job's run
  config.iterations_scale = 0.2;
  return config;
}

TEST(Config, DescribeIsHumanReadable) {
  auto config = tiny(PolicySet::parse("so/ai"));
  EXPECT_EQ(config.describe(), "LU.W x2 on 1 node(s), 22MB, so/ai");
  config.label = "custom";
  EXPECT_EQ(config.describe(), "custom");
}

TEST(Config, NodeParamsReflectMemoryAndWiring) {
  const auto config = tiny();
  const NodeParams node = config.make_node_params();
  EXPECT_EQ(node.vmm.total_frames, mb_to_pages(64.0));
  EXPECT_DOUBLE_EQ(node.wired_mb, 42.0);
  EXPECT_GT(node.swap_slots, 0);
  EXPECT_EQ(node.disk.num_blocks, node.swap_slots);
  EXPECT_EQ(node.vmm.page_cluster, 16);
}

TEST(Config, PageClusterPropagates) {
  auto config = tiny();
  config.page_cluster = 64;
  EXPECT_EQ(config.make_node_params().vmm.page_cluster, 64);
}

TEST(Runner, RunConfigDispatchesOnBatchMode) {
  auto config = tiny();
  config.batch_mode = true;
  const RunOutcome batch = run_config(config);
  EXPECT_EQ(batch.policy, "batch");
  config.batch_mode = false;
  const RunOutcome gang = run_config(config);
  EXPECT_EQ(gang.policy, "orig");
  EXPECT_GT(gang.makespan, batch.makespan);
}

TEST(Runner, CapturesTracesWhenRequested) {
  auto config = tiny();
  config.capture_traces = true;
  const RunOutcome outcome = run_gang(config);
  ASSERT_EQ(outcome.traces.size(), 1u);
  EXPECT_GT(outcome.traces[0].pages_in.total(), 0.0);
  EXPECT_GT(outcome.traces[0].pages_out.total(), 0.0);
}

TEST(Runner, NoTracesByDefault) {
  const RunOutcome outcome = run_gang(tiny());
  EXPECT_TRUE(outcome.traces.empty());
}

TEST(Runner, EvaluateComputesOverhead) {
  const EvaluatedRun result = evaluate(tiny());
  ASSERT_GT(result.gang.makespan, 0);
  ASSERT_GT(result.batch.makespan, 0);
  EXPECT_GT(result.overhead, 0.0);
  EXPECT_LT(result.overhead, 1.0);
  EXPECT_DOUBLE_EQ(
      result.overhead,
      switching_overhead(result.gang.makespan, result.batch.makespan));
}

TEST(Runner, HorizonTimeoutReportsMinusOne) {
  auto config = tiny();
  config.horizon = kSecond;  // far too short
  const RunOutcome outcome = run_gang(config);
  EXPECT_EQ(outcome.makespan, -1);
}

TEST(Runner, JobOutcomesCarryPerJobStats) {
  const RunOutcome outcome = run_gang(tiny());
  ASSERT_EQ(outcome.jobs.size(), 2u);
  for (const auto& job : outcome.jobs) {
    EXPECT_GT(job.completion, 0);
    EXPECT_GT(job.cpu_time, 0);
    EXPECT_GT(job.minor_faults, 0u);
  }
  EXPECT_EQ(outcome.major_faults,
            outcome.jobs[0].major_faults + outcome.jobs[1].major_faults);
}

TEST(Runner, ParallelMapPreservesOrder) {
  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < 5; ++i) {
    auto config = tiny();
    config.label = "cfg" + std::to_string(i);
    configs.push_back(config);
  }
  auto labels = parallel_map<std::string>(
      configs,
      [](const ExperimentConfig& c) { return c.label; }, 2);
  ASSERT_EQ(labels.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(labels[static_cast<std::size_t>(i)],
              "cfg" + std::to_string(i));
  }
}

TEST(Runner, ParallelRunsMatchSerialRuns) {
  std::vector<ExperimentConfig> configs = {tiny(), tiny(PolicySet::all())};
  auto parallel = parallel_map<RunOutcome>(
      configs, [](const ExperimentConfig& c) { return run_gang(c); }, 2);
  auto serial = parallel_map<RunOutcome>(
      configs, [](const ExperimentConfig& c) { return run_gang(c); }, 1);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].makespan, serial[i].makespan);
    EXPECT_EQ(parallel[i].pages_swapped_in, serial[i].pages_swapped_in);
  }
}

TEST(Figures, MemoryConfigsOvercommitButFitOneInstance) {
  for (NpbApp app : kAllApps) {
    const auto spec = npb_spec(app, NpbClass::kB);
    const double usable = fig7_usable_mb(app);
    EXPECT_GT(usable, spec.footprint_mb(1)) << to_string(app);
    EXPECT_LT(usable, 2.0 * spec.footprint_mb(1)) << to_string(app);
    EXPECT_LE(usable, 1024.0) << to_string(app);
  }
  for (int nodes : {2, 4}) {
    for (NpbApp app : kAllApps) {
      const auto spec = npb_spec(app, NpbClass::kB);
      const double usable = fig8_usable_mb(app, nodes);
      EXPECT_GT(usable, spec.footprint_mb(nodes))
          << to_string(app) << "@" << nodes;
    }
  }
}

TEST(Figures, FigureBaseMatchesPaperSetup) {
  const auto config = figure_base(NpbApp::kMG, 4, 350.0, PolicySet::all());
  EXPECT_EQ(config.app, NpbApp::kMG);
  EXPECT_EQ(config.cls, NpbClass::kB);
  EXPECT_EQ(config.nodes, 4);
  EXPECT_EQ(config.instances, 2);
  EXPECT_EQ(config.quantum, 5 * kMinute);
  EXPECT_DOUBLE_EQ(config.node_memory_mb, 1024.0);
  EXPECT_DOUBLE_EQ(config.usable_memory_mb, 350.0);
  EXPECT_EQ(config.policy, PolicySet::all());
}

}  // namespace
}  // namespace apsim
