// Unit tests for access chunks (deterministic page addressing across all
// patterns) and the IterativeProgram op stream.

#include <gtest/gtest.h>

#include <set>

#include "proc/access.hpp"

namespace apsim {
namespace {

TEST(AccessChunk, SequentialAddresses) {
  AccessChunk chunk;
  chunk.pattern = AccessChunk::Pattern::kSequential;
  chunk.region_start = 100;
  chunk.region_pages = 10;
  chunk.touches = 25;
  EXPECT_EQ(chunk.page_at(0), 100);
  EXPECT_EQ(chunk.page_at(9), 109);
  EXPECT_EQ(chunk.page_at(10), 100);  // wraps
  EXPECT_EQ(chunk.page_at(24), 104);
}

TEST(AccessChunk, StridedCoversRegion) {
  AccessChunk chunk;
  chunk.pattern = AccessChunk::Pattern::kStrided;
  chunk.region_start = 0;
  chunk.region_pages = 16;
  chunk.stride = 3;
  chunk.touches = 16;
  std::set<VPage> seen;
  for (std::int64_t i = 0; i < 16; ++i) {
    const VPage v = chunk.page_at(i);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 16);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 16u);  // stride 3 is coprime with 16
}

class PatternBoundsTest
    : public ::testing::TestWithParam<AccessChunk::Pattern> {};

TEST_P(PatternBoundsTest, AllTouchesStayInRegion) {
  AccessChunk chunk;
  chunk.pattern = GetParam();
  chunk.region_start = 1000;
  chunk.region_pages = 77;
  chunk.touches = 500;
  chunk.stride = 5;
  chunk.seed = 99;
  for (std::int64_t i = 0; i < chunk.touches; ++i) {
    const VPage v = chunk.page_at(i);
    EXPECT_GE(v, 1000);
    EXPECT_LT(v, 1077);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternBoundsTest,
                         ::testing::Values(AccessChunk::Pattern::kSequential,
                                           AccessChunk::Pattern::kStrided,
                                           AccessChunk::Pattern::kRandom,
                                           AccessChunk::Pattern::kZipf));

TEST(AccessChunk, RandomIsDeterministicPerSeed) {
  AccessChunk a;
  a.pattern = AccessChunk::Pattern::kRandom;
  a.region_pages = 1000;
  a.touches = 100;
  a.seed = 5;
  AccessChunk b = a;
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.page_at(i), b.page_at(i));
  }
  b.seed = 6;
  int diff = 0;
  for (std::int64_t i = 0; i < 100; ++i) {
    if (a.page_at(i) != b.page_at(i)) ++diff;
  }
  EXPECT_GT(diff, 90);
}

TEST(AccessChunk, ZipfSkewsTowardRegionStart) {
  AccessChunk chunk;
  chunk.pattern = AccessChunk::Pattern::kZipf;
  chunk.region_pages = 1000;
  chunk.touches = 5000;
  chunk.theta = 0.9;
  chunk.seed = 3;
  std::int64_t low = 0;
  for (std::int64_t i = 0; i < chunk.touches; ++i) {
    if (chunk.page_at(i) < 100) ++low;
  }
  EXPECT_GT(low, chunk.touches / 4);  // top decile overrepresented
}

TEST(IterativeProgram, PrologueThenCyclesThenDone) {
  AccessChunk init;
  init.region_pages = 4;
  init.touches = 4;
  AccessChunk work;
  work.region_pages = 2;
  work.touches = 2;
  IterativeProgram program({Op::access_op(init)}, {Op::access_op(work)}, 3);

  Op op = program.next();
  EXPECT_EQ(op.kind, Op::Kind::kAccess);
  EXPECT_EQ(op.access.touches, 4);  // prologue
  for (int i = 0; i < 3; ++i) {
    op = program.next();
    EXPECT_EQ(op.kind, Op::Kind::kAccess);
    EXPECT_EQ(op.access.touches, 2);
  }
  EXPECT_EQ(program.next().kind, Op::Kind::kDone);
  EXPECT_EQ(program.next().kind, Op::Kind::kDone);  // stays done
  EXPECT_DOUBLE_EQ(program.progress(), 1.0);
}

TEST(IterativeProgram, ProgressAdvancesWithIterations) {
  AccessChunk work;
  work.region_pages = 1;
  work.touches = 1;
  IterativeProgram program({}, {Op::access_op(work)}, 4);
  EXPECT_DOUBLE_EQ(program.progress(), 0.0);
  (void)program.next();
  (void)program.next();
  EXPECT_NEAR(program.progress(), 0.25, 1e-9);
}

TEST(IterativeProgram, RandomChunksGetFreshSeedsPerIteration) {
  AccessChunk work;
  work.pattern = AccessChunk::Pattern::kRandom;
  work.region_pages = 1000;
  work.touches = 10;
  work.seed = 1;
  IterativeProgram program({}, {Op::access_op(work)}, 2, /*seed=*/9);
  const Op first = program.next();
  const Op second = program.next();
  EXPECT_NE(first.access.seed, second.access.seed);
}

TEST(IterativeProgram, ZeroIterationsIsImmediatelyDone) {
  IterativeProgram program({}, {}, 0);
  EXPECT_EQ(program.next().kind, Op::Kind::kDone);
}

TEST(IterativeProgram, CommOpsPassThrough) {
  IterativeProgram program(
      {}, {Op::comm_op(CommOp{CommOp::Type::kBarrier, 0})}, 2);
  EXPECT_EQ(program.next().kind, Op::Kind::kComm);
  EXPECT_EQ(program.next().kind, Op::Kind::kComm);
  EXPECT_EQ(program.next().kind, Op::Kind::kDone);
}

}  // namespace
}  // namespace apsim
