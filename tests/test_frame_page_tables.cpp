// Unit tests for physical-frame accounting (incl. the mlock-style wiring
// used by the experiments) and the page table / PTE invariants, plus a fuzz
// section pitting the SoA bitmap view against a plain struct-per-page shadow
// across the transition patterns of the VMM (fault-in, eviction, writeback,
// prefetch, tiering, WS epochs) and the copy-on-write snapshot semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mem/frame_table.hpp"
#include "mem/page_table.hpp"
#include "sim/rng.hpp"

namespace apsim {
namespace {

TEST(FrameTable, AllocAndFreeConserveCounts) {
  FrameTable frames(100);
  EXPECT_EQ(frames.total_frames(), 100);
  EXPECT_EQ(frames.free_frames(), 100);
  auto f = frames.alloc(1, 42);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(frames.free_frames(), 99);
  EXPECT_EQ(frames.used_frames(), 1);
  EXPECT_EQ(frames.frame(*f).owner, 1);
  EXPECT_EQ(frames.frame(*f).vpage, 42);
  frames.free(*f);
  EXPECT_EQ(frames.free_frames(), 100);
  EXPECT_EQ(frames.frame(*f).owner, kNoPid);
}

TEST(FrameTable, ExhaustionReturnsNullopt) {
  FrameTable frames(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(frames.alloc(1, i).has_value());
  }
  EXPECT_FALSE(frames.alloc(1, 3).has_value());
}

TEST(FrameTable, WireDownRemovesFromCirculation) {
  FrameTable frames(100);
  EXPECT_EQ(frames.wire_down(30), 30);
  EXPECT_EQ(frames.wired_frames(), 30);
  EXPECT_EQ(frames.usable_frames(), 70);
  EXPECT_EQ(frames.free_frames(), 70);
  int allocated = 0;
  while (frames.alloc(1, allocated).has_value()) ++allocated;
  EXPECT_EQ(allocated, 70);
}

TEST(FrameTable, WireDownClampsToFreePool) {
  FrameTable frames(10);
  (void)frames.alloc(1, 0);
  EXPECT_EQ(frames.wire_down(100), 9);
  EXPECT_EQ(frames.usable_frames(), 1);
}

TEST(FrameTable, MbToPagesRoundTrip) {
  EXPECT_EQ(mb_to_pages(1.0), 256);       // 1 MB = 256 x 4 KiB
  EXPECT_EQ(mb_to_pages(1024.0), 262144); // 1 GB
  EXPECT_DOUBLE_EQ(pages_to_mb(256), 1.0);
}

TEST(PageTable, DefaultPteIsEmpty) {
  PageTable pt(16);
  const auto pte = pt.at(0);
  EXPECT_FALSE(pte.present());
  EXPECT_FALSE(pte.referenced());
  EXPECT_FALSE(pte.dirty());
  EXPECT_FALSE(pte.io_busy());
  EXPECT_EQ(pte.frame(), kNoFrame);
  EXPECT_EQ(pte.slot(), kNoSwapSlot);
  EXPECT_FALSE(pte.ever_touched());
  EXPECT_FALSE(pte.ws_seen());
  EXPECT_FALSE(pte.evicted_this_epoch());
}

TEST(PageTable, ValidBounds) {
  PageTable pt(16);
  EXPECT_TRUE(pt.valid(0));
  EXPECT_TRUE(pt.valid(15));
  EXPECT_FALSE(pt.valid(16));
  EXPECT_FALSE(pt.valid(-1));
}

TEST(PageTable, ClockHandWraps) {
  PageTable pt(4);
  EXPECT_EQ(pt.clock_hand(), 0);
  for (int i = 0; i < 4; ++i) pt.advance_clock_hand();
  EXPECT_EQ(pt.clock_hand(), 0);
  pt.set_clock_hand(7);
  EXPECT_EQ(pt.clock_hand(), 3);
}

TEST(Pte, CleanDropSemantics) {
  PageTable pt(8);
  Pte pte = pt.at(3);
  EXPECT_FALSE(pte.clean_drop_ok());  // not present
  pte.set_present(true);
  EXPECT_FALSE(pte.clean_drop_ok());  // no swap copy
  pte.set_slot(5);
  EXPECT_TRUE(pte.clean_drop_ok());
  pte.set_dirty(true);
  EXPECT_FALSE(pte.clean_drop_ok());  // dirty needs a write
}

// ---------------------------------------------------------------------------
// Fuzz: bitmap view vs a plain struct-per-page reference shadow

/// The pre-migration layout, field for field: the ground truth the bitmap
/// rows and the Pte accessor view must reproduce exactly.
struct RefPte {
  bool present = false;
  bool referenced = false;
  bool dirty = false;
  bool io_busy = false;
  bool ever_touched = false;
  bool ws_seen = false;
  bool evicted = false;
  FrameNum frame = kNoFrame;
  SwapSlot slot = kNoSwapSlot;
  SimTime last_ref = 0;
  std::uint8_t age = 0;
};

void expect_matches_shadow(const PageTable& pt,
                           const std::vector<RefPte>& shadow) {
  ASSERT_EQ(pt.num_pages(), std::ssize(shadow));
  for (VPage v = 0; v < pt.num_pages(); ++v) {
    const auto pte = pt.at(v);
    const RefPte& ref = shadow[static_cast<std::size_t>(v)];
    ASSERT_EQ(pte.present(), ref.present) << "page " << v;
    ASSERT_EQ(pte.referenced(), ref.referenced) << "page " << v;
    ASSERT_EQ(pte.dirty(), ref.dirty) << "page " << v;
    ASSERT_EQ(pte.io_busy(), ref.io_busy) << "page " << v;
    ASSERT_EQ(pte.ever_touched(), ref.ever_touched) << "page " << v;
    ASSERT_EQ(pte.ws_seen(), ref.ws_seen) << "page " << v;
    ASSERT_EQ(pte.evicted_this_epoch(), ref.evicted) << "page " << v;
    ASSERT_EQ(pte.frame(), ref.frame) << "page " << v;
    ASSERT_EQ(pte.slot(), ref.slot) << "page " << v;
    ASSERT_EQ(pte.last_ref(), ref.last_ref) << "page " << v;
    ASSERT_EQ(pte.age(), ref.age) << "page " << v;
    ASSERT_EQ(pte.clean_drop_ok(),
              ref.present && !ref.dirty && ref.slot != kNoSwapSlot)
        << "page " << v;
  }
}

/// Brute-force twin of the word scans, over the shadow.
VPage ref_scan(const std::vector<RefPte>& shadow, VPage from,
               bool (*want)(const RefPte&)) {
  const auto n = static_cast<VPage>(shadow.size());
  for (VPage v = std::max<VPage>(from, 0); v < n; ++v) {
    if (want(shadow[static_cast<std::size_t>(v)])) return v;
  }
  return n;
}

void expect_scans_match(const PageTable& pt, const std::vector<RefPte>& shadow,
                        Rng& rng) {
  const std::int64_t n = pt.num_pages();
  for (int probe = 0; probe < 16; ++probe) {
    const VPage from = static_cast<VPage>(rng.next_below(
        static_cast<std::uint64_t>(n) + 2));  // includes n and n+1
    ASSERT_EQ(pt.next_present(from),
              ref_scan(shadow, from, [](const RefPte& p) { return p.present; }))
        << "from " << from;
    ASSERT_EQ(pt.next_live(from),
              ref_scan(shadow, from,
                       [](const RefPte& p) {
                         return p.present || p.slot != kNoSwapSlot;
                       }))
        << "from " << from;
    ASSERT_EQ(pt.next_dirty_candidate(from),
              ref_scan(shadow, from,
                       [](const RefPte& p) {
                         return p.present && p.dirty && !p.io_busy;
                       }))
        << "from " << from;
    const VPage start = static_cast<VPage>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto count = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n - start) + 1));
    std::int64_t expected = 0;
    for (VPage v = start; v < start + count; ++v) {
      expected += shadow[static_cast<std::size_t>(v)].present ? 1 : 0;
    }
    ASSERT_EQ(pt.count_present(start, count), expected)
        << "start " << start << " count " << count;
  }
}

/// Bits past num_pages() in the last word of every row must stay zero —
/// the invariant all word scans rely on.
void expect_tail_bits_zero(const PageTable& pt) {
  const std::int64_t n = pt.num_pages();
  if ((n & 63) == 0) return;
  const std::uint64_t tail_mask = ~std::uint64_t{0} << (n & 63);
  const PageTable::Meta& m = pt.ro();
  for (const auto* row : {&m.present, &m.referenced, &m.dirty, &m.io_busy,
                          &m.ever_touched, &m.has_slot, &m.ws_seen,
                          &m.evicted}) {
    ASSERT_EQ(row->back() & tail_mask, 0u);
  }
}

TEST(PageTableFuzz, BitmapViewMatchesReferenceShadow) {
  Rng rng(20240808);
  for (const std::int64_t npages : {1, 63, 64, 65, 192, 517}) {
    PageTable pt(npages);
    std::vector<RefPte> shadow(static_cast<std::size_t>(npages));
    SimTime now = 0;
    for (int op = 0; op < 2000; ++op) {
      const VPage v = static_cast<VPage>(
          rng.next_below(static_cast<std::uint64_t>(npages)));
      Pte pte = pt.at(v);
      RefPte& ref = shadow[static_cast<std::size_t>(v)];
      ++now;
      // Composite transitions modelled on the VMM's fault / touch / evict /
      // writeback / prefetch / tier paths, plus epoch resets.
      switch (rng.next_below(10)) {
        case 0: {  // fault-in (minor or major completion)
          pte.set_present(true);
          pte.set_frame(static_cast<FrameNum>(v));
          pte.set_referenced(true);
          pte.set_ever_touched(true);
          pte.set_last_ref(now);
          pte.set_age(3);
          ref.present = true;
          ref.frame = static_cast<FrameNum>(v);
          ref.referenced = true;
          ref.ever_touched = true;
          ref.last_ref = now;
          ref.age = 3;
          break;
        }
        case 1: {  // write touch: dirty + drop the stale swap copy
          if (!ref.present) break;
          pte.set_referenced(true);
          pte.set_dirty(true);
          pte.set_last_ref(now);
          pte.set_ws_seen();
          ref.referenced = true;
          ref.dirty = true;
          ref.last_ref = now;
          ref.ws_seen = true;
          if (!ref.io_busy && ref.slot != kNoSwapSlot) {
            pte.set_slot(kNoSwapSlot);
            ref.slot = kNoSwapSlot;
          }
          break;
        }
        case 2: {  // eviction write-out start
          if (!ref.present || ref.io_busy) break;
          pte.set_io_busy(true);
          pte.set_slot(static_cast<SwapSlot>(v) + 7);
          ref.io_busy = true;
          ref.slot = static_cast<SwapSlot>(v) + 7;
          break;
        }
        case 3: {  // write-out completion: unmap, keep the swap copy
          if (!ref.io_busy) break;
          pte.set_io_busy(false);
          pte.set_dirty(false);
          pte.set_present(false);
          pte.set_frame(kNoFrame);
          pte.set_evicted_this_epoch();
          ref.io_busy = false;
          ref.dirty = false;
          ref.present = false;
          ref.frame = kNoFrame;
          ref.evicted = true;
          break;
        }
        case 4: {  // clean drop (swap copy already valid)
          if (!(ref.present && !ref.dirty && ref.slot != kNoSwapSlot) ||
              ref.io_busy) {
            break;
          }
          pte.set_present(false);
          pte.set_frame(kNoFrame);
          pte.set_evicted_this_epoch();
          ref.present = false;
          ref.frame = kNoFrame;
          ref.evicted = true;
          break;
        }
        case 5: {  // prefetch / major-fault swap read landing
          if (ref.present || ref.slot == kNoSwapSlot) break;
          pte.set_present(true);
          pte.set_frame(static_cast<FrameNum>(v) + 1);
          pte.set_last_ref(now);
          ref.present = true;
          ref.frame = static_cast<FrameNum>(v) + 1;
          ref.last_ref = now;
          break;
        }
        case 6: {  // tier writeback probe: transient io_busy toggle
          if (!ref.present) break;
          pte.set_io_busy(!ref.io_busy);
          ref.io_busy = !ref.io_busy;
          break;
        }
        case 7: {  // clock sweep: clear the reference bit, age down
          pte.set_referenced(false);
          if (ref.age > 0) pte.set_age(ref.age - 1);
          ref.referenced = false;
          if (ref.age > 0) --ref.age;
          break;
        }
        case 8: {  // new WS epoch
          pt.clear_epoch_tags();
          for (RefPte& r : shadow) {
            r.ws_seen = false;
            r.evicted = false;
          }
          break;
        }
        case 9: {  // ws tag on a touch
          if (!ref.present) break;
          pte.set_ws_seen();
          pte.set_last_ref(now);
          ref.ws_seen = true;
          ref.last_ref = now;
          break;
        }
      }
      if (op % 100 == 99) {
        expect_matches_shadow(pt, shadow);
        expect_scans_match(pt, shadow, rng);
        expect_tail_bits_zero(pt);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(PageTableFuzz, SnapshotIsImmutableAcrossCopyOnWriteDetach) {
  Rng rng(77);
  PageTable pt(130);
  std::vector<RefPte> shadow(130);
  // Scatter some initial state.
  for (VPage v = 0; v < 130; v += 3) {
    Pte pte = pt.at(v);
    pte.set_present(true);
    pte.set_frame(v);
    pte.set_last_ref(v * 10);
    auto& ref = shadow[static_cast<std::size_t>(v)];
    ref.present = true;
    ref.frame = v;
    ref.last_ref = v * 10;
    if (v % 6 == 0) {
      pte.set_dirty(true);
      ref.dirty = true;
    }
  }
  const std::shared_ptr<const PageTable::Meta> snap = pt.share_meta();
  const std::vector<RefPte> frozen = shadow;

  // Mutate the live table heavily; the snapshot must not move.
  for (int op = 0; op < 500; ++op) {
    const VPage v = static_cast<VPage>(rng.next_below(130));
    Pte pte = pt.at(v);
    auto& ref = shadow[static_cast<std::size_t>(v)];
    pte.set_present(!ref.present);
    ref.present = !ref.present;
    pte.set_slot(ref.slot == kNoSwapSlot ? v : kNoSwapSlot);
    ref.slot = ref.slot == kNoSwapSlot ? v : kNoSwapSlot;
    pte.set_last_ref(op);
    ref.last_ref = op;
  }
  expect_matches_shadow(pt, shadow);
  for (VPage v = 0; v < 130; ++v) {
    const auto i = static_cast<std::size_t>(v);
    ASSERT_EQ((snap->present[page_word(v)] & page_bit(v)) != 0,
              frozen[i].present)
        << "page " << v;
    ASSERT_EQ((snap->dirty[page_word(v)] & page_bit(v)) != 0, frozen[i].dirty)
        << "page " << v;
    ASSERT_EQ(snap->frame[i], frozen[i].frame) << "page " << v;
    ASSERT_EQ(snap->slot[i], frozen[i].slot) << "page " << v;
    ASSERT_EQ(snap->last_ref[i], frozen[i].last_ref) << "page " << v;
  }

  // Adopting the snapshot rolls the table back to the frozen state, and the
  // next mutation detaches again without touching the image.
  pt.adopt_meta(snap);
  expect_matches_shadow(pt, frozen);
  pt.at(0).set_present(!frozen[0].present);
  ASSERT_EQ((snap->present[0] & 1u) != 0, frozen[0].present);
}

}  // namespace
}  // namespace apsim
