// Unit tests for physical-frame accounting (incl. the mlock-style wiring
// used by the experiments) and the page table / PTE invariants.

#include <gtest/gtest.h>

#include "mem/frame_table.hpp"
#include "mem/page_table.hpp"

namespace apsim {
namespace {

TEST(FrameTable, AllocAndFreeConserveCounts) {
  FrameTable frames(100);
  EXPECT_EQ(frames.total_frames(), 100);
  EXPECT_EQ(frames.free_frames(), 100);
  auto f = frames.alloc(1, 42);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(frames.free_frames(), 99);
  EXPECT_EQ(frames.used_frames(), 1);
  EXPECT_EQ(frames.frame(*f).owner, 1);
  EXPECT_EQ(frames.frame(*f).vpage, 42);
  frames.free(*f);
  EXPECT_EQ(frames.free_frames(), 100);
  EXPECT_EQ(frames.frame(*f).owner, kNoPid);
}

TEST(FrameTable, ExhaustionReturnsNullopt) {
  FrameTable frames(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(frames.alloc(1, i).has_value());
  }
  EXPECT_FALSE(frames.alloc(1, 3).has_value());
}

TEST(FrameTable, WireDownRemovesFromCirculation) {
  FrameTable frames(100);
  EXPECT_EQ(frames.wire_down(30), 30);
  EXPECT_EQ(frames.wired_frames(), 30);
  EXPECT_EQ(frames.usable_frames(), 70);
  EXPECT_EQ(frames.free_frames(), 70);
  int allocated = 0;
  while (frames.alloc(1, allocated).has_value()) ++allocated;
  EXPECT_EQ(allocated, 70);
}

TEST(FrameTable, WireDownClampsToFreePool) {
  FrameTable frames(10);
  (void)frames.alloc(1, 0);
  EXPECT_EQ(frames.wire_down(100), 9);
  EXPECT_EQ(frames.usable_frames(), 1);
}

TEST(FrameTable, MbToPagesRoundTrip) {
  EXPECT_EQ(mb_to_pages(1.0), 256);       // 1 MB = 256 x 4 KiB
  EXPECT_EQ(mb_to_pages(1024.0), 262144); // 1 GB
  EXPECT_DOUBLE_EQ(pages_to_mb(256), 1.0);
}

TEST(PageTable, DefaultPteIsEmpty) {
  PageTable pt(16);
  const Pte& pte = pt.at(0);
  EXPECT_FALSE(pte.present);
  EXPECT_FALSE(pte.referenced);
  EXPECT_FALSE(pte.dirty);
  EXPECT_FALSE(pte.io_busy);
  EXPECT_EQ(pte.frame, kNoFrame);
  EXPECT_EQ(pte.slot, kNoSwapSlot);
  EXPECT_FALSE(pte.ever_touched);
}

TEST(PageTable, ValidBounds) {
  PageTable pt(16);
  EXPECT_TRUE(pt.valid(0));
  EXPECT_TRUE(pt.valid(15));
  EXPECT_FALSE(pt.valid(16));
  EXPECT_FALSE(pt.valid(-1));
}

TEST(PageTable, ClockHandWraps) {
  PageTable pt(4);
  EXPECT_EQ(pt.clock_hand(), 0);
  for (int i = 0; i < 4; ++i) pt.advance_clock_hand();
  EXPECT_EQ(pt.clock_hand(), 0);
  pt.set_clock_hand(7);
  EXPECT_EQ(pt.clock_hand(), 3);
}

TEST(Pte, CleanDropSemantics) {
  Pte pte;
  EXPECT_FALSE(pte.clean_drop_ok());  // not present
  pte.present = true;
  EXPECT_FALSE(pte.clean_drop_ok());  // no swap copy
  pte.slot = 5;
  EXPECT_TRUE(pte.clean_drop_ok());
  pte.dirty = true;
  EXPECT_FALSE(pte.clean_drop_ok());  // dirty needs a write
}

}  // namespace
}  // namespace apsim
