// Edge cases and failure injection: swap exhaustion, process teardown with
// I/O in flight, three-job gang rotation, narrow-job packing, and other
// boundary conditions the main suites don't reach.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

TEST(EdgeCases, ReleaseProcessWithWritebackInFlight) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 1 << 14});
  SwapDevice swap(disk, 0, 1 << 14);
  VmmParams params;
  params.total_frames = 128;
  Vmm vmm(sim, swap, params);

  const Pid pid = vmm.create_process(64);
  for (VPage v = 0; v < 32; ++v) {
    bool done = false;
    vmm.fault(pid, v, true, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }
  // Start writes, then kill the process before they complete.
  vmm.writeback_dirty(pid, 32, IoPriority::kForeground, nullptr);
  vmm.release_process(pid);
  sim.run();
  // The completion handlers must reap everything: no leaked frames/slots.
  EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames());
  EXPECT_EQ(swap.used_slots(), 0);
}

TEST(EdgeCases, ReleaseProcessWithEvictionInFlight) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 1 << 14});
  SwapDevice swap(disk, 0, 1 << 14);
  VmmParams params;
  params.total_frames = 64;
  params.freepages_min = 4;
  params.freepages_low = 8;
  params.freepages_high = 12;
  Vmm vmm(sim, swap, params);

  const Pid pid = vmm.create_process(128);
  for (VPage v = 0; v < 50; ++v) {
    bool done = false;
    vmm.fault(pid, v, true, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }
  vmm.request_free_frames(40, [] {});  // kick evictions (writes)
  // Do NOT run the sim yet: release with the reclaim about to start.
  vmm.release_process(pid);
  sim.run();
  EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames());
  EXPECT_EQ(swap.used_slots(), 0);
}

TEST(EdgeCases, PrefetchOnReleasedProcessCompletes) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 1 << 14});
  SwapDevice swap(disk, 0, 1 << 14);
  Vmm vmm(sim, swap, VmmParams{.total_frames = 64});
  const Pid pid = vmm.create_process(32);
  vmm.release_process(pid);
  bool done = false;
  vmm.prefetch(pid, {PageRun{0, 16}}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);  // completes immediately, reads nothing
  EXPECT_EQ(disk.stats().blocks_read, 0u);
}

TEST(EdgeCases, SwapExhaustionDoesNotCrashOrHang) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 64});
  SwapDevice swap(disk, 0, 48);  // far too small
  VmmParams params;
  params.total_frames = 32;
  params.freepages_min = 2;
  params.freepages_low = 4;
  params.freepages_high = 6;
  Vmm vmm(sim, swap, params);
  vmm.log().set_level(LogLevel::kOff);  // exercise the error paths silently

  const Pid pid = vmm.create_process(256);
  // Touch far more pages than frames + swap can hold; must terminate (the
  // early-release safety valve) rather than deadlock.
  int completed = 0;
  for (VPage v = 0; v < 128; ++v) {
    vmm.fault(pid, v, true, [&] { ++completed; });
    (void)sim.run(sim.now() + 10 * kSecond);
  }
  (void)sim.run(sim.now() + kMinute);
  EXPECT_GT(completed, 0);
  EXPECT_GT(vmm.stats().oom_waiter_releases + vmm.stats().alloc_retries, 0u);
}

struct ThreeJobFixture : ::testing::Test {
  static NodeParams node_params() {
    NodeParams n;
    n.vmm.total_frames = 2048;
    n.disk.num_blocks = 1 << 15;
    return n;
  }

  ThreeJobFixture() : cluster(2, node_params()) {}

  Job& add_job(GangScheduler& scheduler, const std::string& name,
               std::vector<int> nodes, std::int64_t iterations) {
    Job& job = scheduler.create_job(name);
    for (int n : nodes) {
      SweepOptions options;
      options.pages = 128;
      options.iterations = iterations;
      options.compute_per_touch = 20 * kMicrosecond;
      const Pid pid = cluster.node(n).vmm().create_process(options.pages);
      procs.push_back(std::make_unique<Process>(name + ":" + std::to_string(n),
                                                pid,
                                                make_sweep_program(options)));
      cluster.node(n).cpu().attach(*procs.back());
      job.add_process(n, *procs.back());
    }
    return job;
  }

  Cluster cluster;
  std::vector<std::unique_ptr<Process>> procs;
};

TEST_F(ThreeJobFixture, ThreeJobsRotateRoundRobin) {
  GangParams params;
  params.quantum = kSecond;
  GangScheduler scheduler(cluster, params);
  add_job(scheduler, "a", {0, 1}, 800);
  add_job(scheduler, "b", {0, 1}, 800);
  add_job(scheduler, "c", {0, 1}, 800);
  EXPECT_EQ(scheduler.matrix().num_slots(), 0);  // assigned at start()
  scheduler.start();
  ASSERT_TRUE(cluster.sim().run_until([&] { return scheduler.all_finished(); },
                                      30 * kMinute));
  // Total compute 3 x 800 x 128 x 20us ~= 6.1 s; with 1 s quanta each job
  // waited roughly two thirds of the time.
  for (const auto& p : procs) {
    EXPECT_GT(p->stats().stopped_time, 2 * kSecond);
  }
  EXPECT_GE(scheduler.switches(), 5);
}

TEST_F(ThreeJobFixture, NarrowJobsShareASlot) {
  GangParams params;
  params.quantum = kSecond;
  GangScheduler scheduler(cluster, params);
  add_job(scheduler, "left", {0}, 400);
  add_job(scheduler, "right", {1}, 400);
  add_job(scheduler, "wide", {0, 1}, 400);
  scheduler.start();
  // left and right pack into slot 0; wide gets slot 1.
  EXPECT_EQ(scheduler.matrix().num_slots(), 2);
  ASSERT_TRUE(cluster.sim().run_until([&] { return scheduler.all_finished(); },
                                      30 * kMinute));
  // left and right ran concurrently: their completions are close.
  const SimTime left_done = procs[0]->stats().finished_at;
  const SimTime right_done = procs[1]->stats().finished_at;
  EXPECT_LT(std::abs(left_done - right_done), kSecond);
}

TEST(EdgeCasesMisc, EmptyGangSchedulerFinishesTrivially) {
  NodeParams node;
  node.vmm.total_frames = 256;
  node.disk.num_blocks = 1 << 12;
  Cluster cluster(1, node);
  GangScheduler scheduler(cluster, GangParams{});
  EXPECT_TRUE(scheduler.all_finished());  // vacuously
}

TEST(EdgeCasesMisc, ComputeOnlyProgramNeedsNoMemory) {
  NodeParams node;
  node.vmm.total_frames = 256;
  node.disk.num_blocks = 1 << 12;
  Cluster cluster(1, node);
  const Pid pid = cluster.node(0).vmm().create_process(1);
  auto program = std::make_unique<IterativeProgram>(
      std::vector<Op>{}, std::vector<Op>{Op::compute_op(kSecond)}, 3);
  Process proc("cpu-only", pid, std::move(program));
  cluster.node(0).cpu().attach(proc);
  cluster.node(0).cpu().cont_process(proc);
  cluster.sim().run();
  EXPECT_TRUE(proc.finished());
  EXPECT_EQ(proc.stats().cpu_time, 3 * kSecond);
  EXPECT_EQ(cluster.node(0).vmm().frames().used_frames(), 0);
}

}  // namespace
}  // namespace apsim
