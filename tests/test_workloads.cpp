// Unit tests for the NPB workload specs and program builders, plus the
// generic generators, parameterized across apps and classes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "workloads/generator.hpp"
#include "workloads/npb.hpp"

namespace apsim {
namespace {

class SpecTest : public ::testing::TestWithParam<NpbApp> {};

TEST_P(SpecTest, ClassScalingIsMonotone) {
  const NpbApp app = GetParam();
  double last = 0.0;
  for (NpbClass cls : {NpbClass::kS, NpbClass::kW, NpbClass::kA, NpbClass::kB,
                       NpbClass::kC}) {
    const auto spec = npb_spec(app, cls);
    EXPECT_GT(spec.total_footprint_mb, last);
    last = spec.total_footprint_mb;
    EXPECT_GT(spec.iterations, 0);
    EXPECT_GT(spec.compute_per_touch, 0);
    EXPECT_FALSE(spec.phases.empty());
  }
}

TEST_P(SpecTest, ParallelFootprintSharesWithReplication) {
  const auto spec = npb_spec(GetParam(), NpbClass::kB);
  const double serial = spec.footprint_mb(1);
  const double on4 = spec.footprint_mb(4);
  EXPECT_GT(on4, serial / 4.0);          // replication overhead
  EXPECT_LT(on4, serial / 4.0 * 1.25);   // but bounded
  EXPECT_GT(spec.footprint_pages(4), 0);
}

TEST_P(SpecTest, ExpectedWsWithinFootprint) {
  for (int nprocs : {1, 2, 4}) {
    const auto spec = npb_spec(GetParam(), NpbClass::kB);
    const auto ws = spec.expected_ws_pages(nprocs);
    EXPECT_GT(ws, 0);
    EXPECT_LE(ws, spec.footprint_pages(nprocs));
  }
}

TEST_P(SpecTest, ProgramTouchesOnlyItsFootprint) {
  const auto spec = npb_spec(GetParam(), NpbClass::kS);
  NpbBuildOptions options;
  options.nprocs = 1;
  auto program = build_npb_program(spec, options);
  const std::int64_t npages = spec.footprint_pages(1);
  int guard = 0;
  for (Op op = program->next(); op.kind != Op::Kind::kDone;
       op = program->next()) {
    ASSERT_LT(++guard, 100000) << "program never terminates";
    if (op.kind != Op::Kind::kAccess) continue;
    const auto& chunk = op.access;
    EXPECT_GE(chunk.region_start, 0);
    EXPECT_LE(chunk.region_start + chunk.region_pages, npages);
    // Spot-check addressing.
    for (std::int64_t i = 0; i < std::min<std::int64_t>(chunk.touches, 64);
         ++i) {
      const VPage v = chunk.page_at(i);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, npages);
    }
  }
  EXPECT_DOUBLE_EQ(program->progress(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, SpecTest, ::testing::ValuesIn(kAllApps),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Spec, NamesRoundTrip) {
  for (NpbApp app : kAllApps) {
    EXPECT_EQ(parse_app(to_string(app)), app);
  }
  for (NpbClass cls : {NpbClass::kS, NpbClass::kW, NpbClass::kA, NpbClass::kB,
                       NpbClass::kC}) {
    EXPECT_EQ(parse_class(to_string(cls)), cls);
  }
  EXPECT_THROW((void)parse_app("XX"), std::invalid_argument);
  EXPECT_THROW((void)parse_class("Q"), std::invalid_argument);
}

TEST(Spec, QualitativeShapesMatchThePaper) {
  const auto lu = npb_spec(NpbApp::kLU, NpbClass::kB);
  const auto sp = npb_spec(NpbApp::kSP, NpbClass::kB);
  const auto cg = npb_spec(NpbApp::kCG, NpbClass::kB);
  const auto is = npb_spec(NpbApp::kIS, NpbClass::kB);
  const auto mg = npb_spec(NpbApp::kMG, NpbClass::kB);
  // MG has the largest footprint, IS the smallest.
  EXPECT_GT(mg.total_footprint_mb, lu.total_footprint_mb);
  EXPECT_GT(mg.total_footprint_mb, sp.total_footprint_mb);
  EXPECT_LT(is.total_footprint_mb, lu.total_footprint_mb);
  // CG's working set is small relative to its (large) footprint.
  const double cg_ws_frac =
      static_cast<double>(cg.expected_ws_pages(1)) /
      static_cast<double>(cg.footprint_pages(1));
  const double lu_ws_frac =
      static_cast<double>(lu.expected_ws_pages(1)) /
      static_cast<double>(lu.footprint_pages(1));
  EXPECT_LT(cg_ws_frac, 0.6);
  EXPECT_GT(lu_ws_frac, 0.9);
}

TEST(NpbProgram, ParallelRanksGetCommOps) {
  NpbBuildOptions options;
  options.nprocs = 4;
  auto program = build_npb_program(NpbApp::kLU, NpbClass::kS, options);
  bool saw_exchange = false;
  bool saw_allreduce = false;
  int guard = 0;
  for (Op op = program->next(); op.kind != Op::Kind::kDone;
       op = program->next()) {
    ASSERT_LT(++guard, 100000);
    if (op.kind == Op::Kind::kComm) {
      saw_exchange |= op.comm.type == CommOp::Type::kExchange;
      saw_allreduce |= op.comm.type == CommOp::Type::kAllreduce;
    }
  }
  EXPECT_TRUE(saw_exchange);
  EXPECT_TRUE(saw_allreduce);
}

TEST(NpbProgram, SerialHasNoCommOps) {
  auto program = build_npb_program(NpbApp::kLU, NpbClass::kS, {});
  int guard = 0;
  for (Op op = program->next(); op.kind != Op::Kind::kDone;
       op = program->next()) {
    ASSERT_LT(++guard, 100000);
    EXPECT_NE(op.kind, Op::Kind::kComm);
  }
}

TEST(NpbProgram, IterationScaleShortensRun) {
  NpbBuildOptions half;
  half.iterations_scale = 0.5;
  auto full = build_npb_program(NpbApp::kIS, NpbClass::kS, {});
  auto halved = build_npb_program(NpbApp::kIS, NpbClass::kS, half);
  auto count_ops = [](Program& p) {
    int n = 0;
    while (p.next().kind != Op::Kind::kDone) ++n;
    return n;
  };
  const int full_ops = count_ops(*full);
  const int half_ops = count_ops(*halved);
  EXPECT_NEAR(half_ops, full_ops / 2, full_ops / 10 + 2);
}

TEST(Generators, SweepProgramShape) {
  SweepOptions options;
  options.pages = 100;
  options.iterations = 3;
  auto program = make_sweep_program(options);
  // Prologue + 3 sweeps.
  for (int i = 0; i < 4; ++i) {
    const Op op = program->next();
    ASSERT_EQ(op.kind, Op::Kind::kAccess);
    EXPECT_EQ(op.access.touches, 100);
  }
  EXPECT_EQ(program->next().kind, Op::Kind::kDone);
}

TEST(Generators, HotColdConcentratesTouches) {
  HotColdOptions options;
  options.pages = 1000;
  options.hot_fraction = 0.1;
  options.hot_touch_share = 0.9;
  options.touches_per_iteration = 1000;
  options.iterations = 1;
  auto program = make_hot_cold_program(options);
  (void)program->next();  // prologue
  const Op hot = program->next();
  const Op cold = program->next();
  ASSERT_EQ(hot.kind, Op::Kind::kAccess);
  ASSERT_EQ(cold.kind, Op::Kind::kAccess);
  EXPECT_EQ(hot.access.region_pages, 100);
  EXPECT_EQ(hot.access.touches, 900);
  EXPECT_EQ(cold.access.region_start, 100);
  EXPECT_EQ(cold.access.touches, 100);
}

// --- Open-arrival stream statistics ---------------------------------------
//
// The open-arrival generator claims specific distributions; these tests hold
// it to them statistically (fixed seeds, so deterministic) rather than just
// checking field ranges.

double seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

TEST(OpenArrivals, PoissonInterarrivalsPassKolmogorovSmirnov) {
  for (std::uint64_t seed : {1u, 7u, 1234u}) {
    OpenArrivalOptions options;
    options.process = ArrivalProcess::kPoisson;
    options.num_jobs = 2000;
    options.mean_interarrival_s = 10.0;
    options.seed = seed;
    const auto jobs = make_open_arrivals(options, 4);
    ASSERT_EQ(jobs.size(), 2000u);

    std::vector<double> gaps;
    SimTime prev = 0;
    double sum = 0.0;
    for (const OpenJobSpec& job : jobs) {
      ASSERT_GE(job.arrival, prev) << "arrivals must be nondecreasing";
      gaps.push_back(seconds(job.arrival - prev));
      sum += gaps.back();
      prev = job.arrival;
    }
    std::sort(gaps.begin(), gaps.end());

    // One-sample KS against Exp(10 s). Critical value at alpha ~ 0.001 is
    // 1.95 / sqrt(n); a correct sampler with these seeds sits well under it.
    const double n = static_cast<double>(gaps.size());
    double d = 0.0;
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      const double cdf = 1.0 - std::exp(-gaps[i] / 10.0);
      d = std::max(d, std::abs(cdf - static_cast<double>(i + 1) / n));
      d = std::max(d, std::abs(cdf - static_cast<double>(i) / n));
    }
    EXPECT_LT(d, 1.95 / std::sqrt(n)) << "seed " << seed;

    // Sample mean within 5 standard errors of the nominal 10 s.
    EXPECT_NEAR(sum / n, 10.0, 5.0 * 10.0 / std::sqrt(n)) << "seed " << seed;
  }
}

TEST(OpenArrivals, DiurnalPhasesFollowTheEnvelope) {
  // Conditional on the count, the arrival phases of a thinned
  // non-homogeneous Poisson process are iid with density proportional to
  // the rate envelope low + (1 - low) * (1 - cos(2*pi*t/P)) / 2. Chi-squared
  // over 8 phase bins against the envelope integral, across seeds.
  const double period = 100.0;
  const double low = 0.2;
  const int bins = 8;
  for (std::uint64_t seed : {3u, 42u, 909u}) {
    OpenArrivalOptions options;
    options.process = ArrivalProcess::kDiurnal;
    options.num_jobs = 4000;
    options.mean_interarrival_s = 0.5;  // many arrivals per period
    options.diurnal_period_s = period;
    options.diurnal_low_frac = low;
    options.seed = seed;
    const auto jobs = make_open_arrivals(options, 4);

    std::vector<double> observed(bins, 0.0);
    for (const OpenJobSpec& job : jobs) {
      const double phase = std::fmod(seconds(job.arrival), period);
      observed[static_cast<std::size_t>(phase / period * bins)] += 1.0;
    }

    // Expected bin mass: numeric integral of the envelope over each bin.
    std::vector<double> weight(bins, 0.0);
    double total = 0.0;
    const int grid = 1000;
    for (int g = 0; g < grid; ++g) {
      const double t = (g + 0.5) / grid * period;
      const double rate =
          low + (1.0 - low) * (1.0 - std::cos(2.0 * M_PI * t / period)) / 2.0;
      weight[static_cast<std::size_t>(static_cast<double>(g) * bins / grid)] +=
          rate;
      total += rate;
    }

    double chi2 = 0.0;
    for (int b = 0; b < bins; ++b) {
      const double expected =
          weight[static_cast<std::size_t>(b)] / total * jobs.size();
      const double diff = observed[static_cast<std::size_t>(b)] - expected;
      chi2 += diff * diff / expected;
    }
    // 7 degrees of freedom; critical value at alpha = 0.0001 is ~33.7.
    EXPECT_LT(chi2, 33.7) << "seed " << seed;

    // And the qualitative day/night shape: the crest bins (phase ~ P/2)
    // carry several times the trough bins (phase ~ 0), matching low = 0.2.
    const double trough = observed[0] + observed[bins - 1];
    const double crest = observed[bins / 2 - 1] + observed[bins / 2];
    EXPECT_GT(crest, 2.0 * trough) << "seed " << seed;
  }
}

TEST(OpenArrivals, StragglerFractionWithinBinomialBounds) {
  OpenArrivalOptions options;
  options.num_jobs = 2000;
  options.straggler_fraction = 0.3;
  options.straggler_slowdown = 5.0;
  options.max_width = 4;
  options.seed = 5;
  const auto jobs = make_open_arrivals(options, 8);
  int stragglers = 0;
  for (const OpenJobSpec& job : jobs) {
    if (job.straggler_rank < 0) continue;
    ++stragglers;
    EXPECT_LT(job.straggler_rank, job.width);
    EXPECT_DOUBLE_EQ(job.straggler_slowdown, 5.0);
  }
  // Binomial(2000, 0.3): sd of the fraction is ~0.0102; allow 5 sigma.
  const double frac = static_cast<double>(stragglers) / 2000.0;
  EXPECT_NEAR(frac, 0.3, 5.0 * std::sqrt(0.3 * 0.7 / 2000.0));

  // fraction = 0 must produce none at all.
  options.straggler_fraction = 0.0;
  for (const OpenJobSpec& job : make_open_arrivals(options, 8)) {
    EXPECT_EQ(job.straggler_rank, -1);
  }
}

TEST(OpenArrivals, SpecFieldsHonorTheOptions) {
  OpenArrivalOptions options;
  options.num_jobs = 500;
  options.max_width = 3;
  options.min_pages = 100;
  options.max_pages = 200;
  options.min_iterations = 5;
  options.max_iterations = 9;
  options.num_tenants = 3;
  options.deadline_slack = 2.0;
  options.seed = 11;
  const auto jobs = make_open_arrivals(options, 4);
  ASSERT_EQ(jobs.size(), 500u);
  std::set<int> tenants_seen;
  std::set<int> widths_seen;
  for (const OpenJobSpec& job : jobs) {
    EXPECT_GE(job.width, 1);
    EXPECT_LE(job.width, 3);
    widths_seen.insert(job.width);
    EXPECT_GE(job.pages, 100);
    EXPECT_LE(job.pages, 200);
    EXPECT_GE(job.iterations, 5);
    EXPECT_LE(job.iterations, 9);
    EXPECT_GE(job.tenant, 0);
    EXPECT_LT(job.tenant, 3);
    tenants_seen.insert(job.tenant);
    EXPECT_GT(job.estimated_runtime, 0);
    ASSERT_TRUE(job.deadline.has_value());
    EXPECT_EQ(*job.deadline, job.arrival + 2 * job.estimated_runtime);
    const auto placement = job.placement(4);
    ASSERT_EQ(static_cast<int>(placement.size()), job.width);
    for (int node : placement) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 4);
    }
  }
  EXPECT_EQ(static_cast<int>(widths_seen.size()), 3);
  EXPECT_EQ(static_cast<int>(tenants_seen.size()), 3);

  // Same options, same stream: the generator is a pure function of the seed.
  const auto again = make_open_arrivals(options, 4);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(again[i].arrival, jobs[i].arrival);
    EXPECT_EQ(again[i].pages, jobs[i].pages);
    EXPECT_EQ(again[i].seed, jobs[i].seed);
  }

  // Per-rank programs build and terminate.
  auto program = make_open_job_program(jobs[0], 0);
  int guard = 0;
  while (program->next().kind != Op::Kind::kDone) {
    ASSERT_LT(++guard, 1000000);
  }
}

TEST(Generators, RandomProgramSplitsReadsAndWrites) {
  RandomOptions options;
  options.touches_per_iteration = 1000;
  options.write_fraction = 0.25;
  options.iterations = 1;
  auto program = make_random_program(options);
  (void)program->next();  // prologue
  const Op reads = program->next();
  const Op writes = program->next();
  EXPECT_FALSE(reads.access.write);
  EXPECT_EQ(reads.access.touches, 750);
  EXPECT_TRUE(writes.access.write);
  EXPECT_EQ(writes.access.touches, 250);
}

}  // namespace
}  // namespace apsim
