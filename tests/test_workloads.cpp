// Unit tests for the NPB workload specs and program builders, plus the
// generic generators, parameterized across apps and classes.

#include <gtest/gtest.h>

#include <set>

#include "workloads/generator.hpp"
#include "workloads/npb.hpp"

namespace apsim {
namespace {

class SpecTest : public ::testing::TestWithParam<NpbApp> {};

TEST_P(SpecTest, ClassScalingIsMonotone) {
  const NpbApp app = GetParam();
  double last = 0.0;
  for (NpbClass cls : {NpbClass::kS, NpbClass::kW, NpbClass::kA, NpbClass::kB,
                       NpbClass::kC}) {
    const auto spec = npb_spec(app, cls);
    EXPECT_GT(spec.total_footprint_mb, last);
    last = spec.total_footprint_mb;
    EXPECT_GT(spec.iterations, 0);
    EXPECT_GT(spec.compute_per_touch, 0);
    EXPECT_FALSE(spec.phases.empty());
  }
}

TEST_P(SpecTest, ParallelFootprintSharesWithReplication) {
  const auto spec = npb_spec(GetParam(), NpbClass::kB);
  const double serial = spec.footprint_mb(1);
  const double on4 = spec.footprint_mb(4);
  EXPECT_GT(on4, serial / 4.0);          // replication overhead
  EXPECT_LT(on4, serial / 4.0 * 1.25);   // but bounded
  EXPECT_GT(spec.footprint_pages(4), 0);
}

TEST_P(SpecTest, ExpectedWsWithinFootprint) {
  for (int nprocs : {1, 2, 4}) {
    const auto spec = npb_spec(GetParam(), NpbClass::kB);
    const auto ws = spec.expected_ws_pages(nprocs);
    EXPECT_GT(ws, 0);
    EXPECT_LE(ws, spec.footprint_pages(nprocs));
  }
}

TEST_P(SpecTest, ProgramTouchesOnlyItsFootprint) {
  const auto spec = npb_spec(GetParam(), NpbClass::kS);
  NpbBuildOptions options;
  options.nprocs = 1;
  auto program = build_npb_program(spec, options);
  const std::int64_t npages = spec.footprint_pages(1);
  int guard = 0;
  for (Op op = program->next(); op.kind != Op::Kind::kDone;
       op = program->next()) {
    ASSERT_LT(++guard, 100000) << "program never terminates";
    if (op.kind != Op::Kind::kAccess) continue;
    const auto& chunk = op.access;
    EXPECT_GE(chunk.region_start, 0);
    EXPECT_LE(chunk.region_start + chunk.region_pages, npages);
    // Spot-check addressing.
    for (std::int64_t i = 0; i < std::min<std::int64_t>(chunk.touches, 64);
         ++i) {
      const VPage v = chunk.page_at(i);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, npages);
    }
  }
  EXPECT_DOUBLE_EQ(program->progress(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, SpecTest, ::testing::ValuesIn(kAllApps),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Spec, NamesRoundTrip) {
  for (NpbApp app : kAllApps) {
    EXPECT_EQ(parse_app(to_string(app)), app);
  }
  for (NpbClass cls : {NpbClass::kS, NpbClass::kW, NpbClass::kA, NpbClass::kB,
                       NpbClass::kC}) {
    EXPECT_EQ(parse_class(to_string(cls)), cls);
  }
  EXPECT_THROW((void)parse_app("XX"), std::invalid_argument);
  EXPECT_THROW((void)parse_class("Q"), std::invalid_argument);
}

TEST(Spec, QualitativeShapesMatchThePaper) {
  const auto lu = npb_spec(NpbApp::kLU, NpbClass::kB);
  const auto sp = npb_spec(NpbApp::kSP, NpbClass::kB);
  const auto cg = npb_spec(NpbApp::kCG, NpbClass::kB);
  const auto is = npb_spec(NpbApp::kIS, NpbClass::kB);
  const auto mg = npb_spec(NpbApp::kMG, NpbClass::kB);
  // MG has the largest footprint, IS the smallest.
  EXPECT_GT(mg.total_footprint_mb, lu.total_footprint_mb);
  EXPECT_GT(mg.total_footprint_mb, sp.total_footprint_mb);
  EXPECT_LT(is.total_footprint_mb, lu.total_footprint_mb);
  // CG's working set is small relative to its (large) footprint.
  const double cg_ws_frac =
      static_cast<double>(cg.expected_ws_pages(1)) /
      static_cast<double>(cg.footprint_pages(1));
  const double lu_ws_frac =
      static_cast<double>(lu.expected_ws_pages(1)) /
      static_cast<double>(lu.footprint_pages(1));
  EXPECT_LT(cg_ws_frac, 0.6);
  EXPECT_GT(lu_ws_frac, 0.9);
}

TEST(NpbProgram, ParallelRanksGetCommOps) {
  NpbBuildOptions options;
  options.nprocs = 4;
  auto program = build_npb_program(NpbApp::kLU, NpbClass::kS, options);
  bool saw_exchange = false;
  bool saw_allreduce = false;
  int guard = 0;
  for (Op op = program->next(); op.kind != Op::Kind::kDone;
       op = program->next()) {
    ASSERT_LT(++guard, 100000);
    if (op.kind == Op::Kind::kComm) {
      saw_exchange |= op.comm.type == CommOp::Type::kExchange;
      saw_allreduce |= op.comm.type == CommOp::Type::kAllreduce;
    }
  }
  EXPECT_TRUE(saw_exchange);
  EXPECT_TRUE(saw_allreduce);
}

TEST(NpbProgram, SerialHasNoCommOps) {
  auto program = build_npb_program(NpbApp::kLU, NpbClass::kS, {});
  int guard = 0;
  for (Op op = program->next(); op.kind != Op::Kind::kDone;
       op = program->next()) {
    ASSERT_LT(++guard, 100000);
    EXPECT_NE(op.kind, Op::Kind::kComm);
  }
}

TEST(NpbProgram, IterationScaleShortensRun) {
  NpbBuildOptions half;
  half.iterations_scale = 0.5;
  auto full = build_npb_program(NpbApp::kIS, NpbClass::kS, {});
  auto halved = build_npb_program(NpbApp::kIS, NpbClass::kS, half);
  auto count_ops = [](Program& p) {
    int n = 0;
    while (p.next().kind != Op::Kind::kDone) ++n;
    return n;
  };
  const int full_ops = count_ops(*full);
  const int half_ops = count_ops(*halved);
  EXPECT_NEAR(half_ops, full_ops / 2, full_ops / 10 + 2);
}

TEST(Generators, SweepProgramShape) {
  SweepOptions options;
  options.pages = 100;
  options.iterations = 3;
  auto program = make_sweep_program(options);
  // Prologue + 3 sweeps.
  for (int i = 0; i < 4; ++i) {
    const Op op = program->next();
    ASSERT_EQ(op.kind, Op::Kind::kAccess);
    EXPECT_EQ(op.access.touches, 100);
  }
  EXPECT_EQ(program->next().kind, Op::Kind::kDone);
}

TEST(Generators, HotColdConcentratesTouches) {
  HotColdOptions options;
  options.pages = 1000;
  options.hot_fraction = 0.1;
  options.hot_touch_share = 0.9;
  options.touches_per_iteration = 1000;
  options.iterations = 1;
  auto program = make_hot_cold_program(options);
  (void)program->next();  // prologue
  const Op hot = program->next();
  const Op cold = program->next();
  ASSERT_EQ(hot.kind, Op::Kind::kAccess);
  ASSERT_EQ(cold.kind, Op::Kind::kAccess);
  EXPECT_EQ(hot.access.region_pages, 100);
  EXPECT_EQ(hot.access.touches, 900);
  EXPECT_EQ(cold.access.region_start, 100);
  EXPECT_EQ(cold.access.touches, 100);
}

TEST(Generators, RandomProgramSplitsReadsAndWrites) {
  RandomOptions options;
  options.touches_per_iteration = 1000;
  options.write_fraction = 0.25;
  options.iterations = 1;
  auto program = make_random_program(options);
  (void)program->next();  // prologue
  const Op reads = program->next();
  const Op writes = program->next();
  EXPECT_FALSE(reads.access.write);
  EXPECT_EQ(reads.access.touches, 750);
  EXPECT_TRUE(writes.access.write);
  EXPECT_EQ(writes.access.touches, 250);
}

}  // namespace
}  // namespace apsim
