// Odds-and-ends coverage: small public APIs not exercised elsewhere, plus a
// robustness sweep of the scenario parser against malformed input.

#include <gtest/gtest.h>

#include "gang/gang_scheduler.hpp"
#include "harness/scenario.hpp"
#include "metrics/trace.hpp"
#include "proc/process.hpp"
#include "sim/rng.hpp"

namespace apsim {
namespace {

TEST(ProcState, NamesAreStable) {
  EXPECT_EQ(to_string(ProcState::kReady), "ready");
  EXPECT_EQ(to_string(ProcState::kRunning), "running");
  EXPECT_EQ(to_string(ProcState::kBlockedFault), "fault-wait");
  EXPECT_EQ(to_string(ProcState::kBlockedComm), "comm-wait");
  EXPECT_EQ(to_string(ProcState::kStopped), "stopped");
  EXPECT_EQ(to_string(ProcState::kFinished), "finished");
}

TEST(IterativeProgram, IterationCountersExposed) {
  AccessChunk chunk;
  chunk.region_pages = 1;
  chunk.touches = 1;
  IterativeProgram program({}, {Op::access_op(chunk)}, 5);
  EXPECT_EQ(program.iterations_total(), 5);
  EXPECT_EQ(program.iterations_done(), 0);
  (void)program.next();
  (void)program.next();
  EXPECT_EQ(program.iterations_done(), 1);
}

TEST(Trace, RenderRespectsTimeWindow) {
  TimeSeries series(kSecond);
  series.add(5 * kSecond, 10.0);
  series.add(50 * kSecond, 10.0);
  AsciiChartOptions options;
  options.columns = 10;
  options.rows = 2;
  options.t_begin = 40 * kSecond;
  options.t_end = 60 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  // Only the 50 s burst is inside the window: exactly one column lights up.
  int hashes = 0;
  for (char c : chart) {
    if (c == '#') ++hashes;
  }
  EXPECT_EQ(hashes, 2);  // one column, two rows
}

TEST(Trace, BurstConcentrationWithMoreBucketsThanData) {
  TimeSeries series(kSecond);
  series.add(0, 5.0);
  EXPECT_DOUBLE_EQ(burst_concentration(series, 100), 1.0);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ReseedReproduces) {
  Rng rng(5);
  const auto a = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), a);
}

TEST(Scenario, GarbageNeverCrashes) {
  // Anything malformed must throw std::invalid_argument, never crash or
  // silently mis-parse.
  const char* cases[] = {
      "[run",
      "[]\n",
      "=\n",
      "[run]\n= value\n",
      "[run]\nnodes=\n",
      "[run]\nnodes = 1 2\n",
      "[run]\npolicy = so//\n",  // empty token is allowed (orig), fine
      "[run]\nquantum_s = fast\n",
      "[defaults]\n[defaults]\nx=y\n",
      "key_without_section = 1\n",
  };
  for (const char* text : cases) {
    try {
      const auto runs = parse_scenario(text);
      // Some of these are actually legal (e.g. "so//"): just must not crash.
      (void)runs;
    } catch (const std::invalid_argument&) {
      // expected for the malformed ones
    }
  }
}

TEST(Scenario, FuzzRandomLines) {
  Rng rng(2026);
  const char alphabet[] = "[]=#ab /\n0.\t";
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string text;
    const auto len = rng.next_below(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      text += alphabet[rng.next_below(sizeof alphabet - 1)];
    }
    try {
      (void)parse_scenario(text);
    } catch (const std::invalid_argument&) {
      // fine
    }
  }
}

TEST(Job, NodesAndProcessLookup) {
  Job job(3, "j");
  EXPECT_FALSE(job.finished());  // no processes yet
  Process p1("a", 1, std::make_unique<IterativeProgram>(
                          std::vector<Op>{}, std::vector<Op>{}, 0));
  Process p2("b", 2, std::make_unique<IterativeProgram>(
                          std::vector<Op>{}, std::vector<Op>{}, 0));
  job.add_process(0, p1);
  job.add_process(2, p2);
  EXPECT_EQ(job.nodes(), (std::vector<int>{0, 2}));
  EXPECT_EQ(job.process_on(0), &p1);
  EXPECT_EQ(job.process_on(2), &p2);
  EXPECT_EQ(job.process_on(1), nullptr);
  EXPECT_EQ(p1.job_id, 3);
  EXPECT_EQ(job.finished_at(), -1);
}

}  // namespace
}  // namespace apsim
