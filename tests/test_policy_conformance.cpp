// Policy-conformance harness: every policy registered in
// gang/policy_registry.hpp is run through the same open-arrival obstacle
// course (staggered submissions, mixed widths, a mid-run node failure) with
// the SchedulerPolicy contract checked continuously:
//   - jobs_at() never names a done job, a job without a live placement
//     claim on the node, or a job on a fenced/crashed node;
//   - no (slot, node) cell exceeds max_coscheduled();
//   - work conservation: while an admitted unfinished job exists, the
//     schedule is non-empty;
//   - every admitted job eventually runs to completion or is explicitly
//     abandoned (failed), never silently forgotten;
// plus sweep-level determinism at 1, 2 and 8 worker threads.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "gang/policy_registry.hpp"
#include "harness/open_arrival.hpp"
#include "harness/runner.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

struct PolicyConformance : ::testing::TestWithParam<std::string> {
  static NodeParams node_params() {
    NodeParams n;
    n.vmm.total_frames = 2048;
    n.vmm.freepages_min = 8;
    n.vmm.freepages_low = 12;
    n.vmm.freepages_high = 16;
    n.disk.num_blocks = 1 << 16;
    return n;
  }

  PolicyConformance() : cluster(3, node_params()) {}

  /// A job spanning `nodes`, one sweeper rank per node, with open-arrival
  /// metadata so estimate/deadline-driven policies have material.
  Job& make_job(GangScheduler& scheduler, const std::string& name,
                const std::vector<int>& nodes, std::int64_t pages,
                std::int64_t iterations, bool open) {
    Job& job = open ? scheduler.submit_job(name) : scheduler.create_job(name);
    job.declared_ws_pages = pages;
    job.estimated_runtime = iterations * pages * (20 * kMicrosecond);
    job.deadline = cluster.sim().now() + 3 * *job.estimated_runtime;
    for (std::size_t r = 0; r < nodes.size(); ++r) {
      SweepOptions options;
      options.pages = pages;
      options.iterations = iterations;
      options.compute_per_touch = 20 * kMicrosecond;
      const int node = nodes[r];
      const Pid pid = cluster.node(node).vmm().create_process(pages);
      procs.push_back(std::make_unique<Process>(
          name + ":" + std::to_string(r), pid, make_sweep_program(options)));
      cluster.node(node).cpu().attach(*procs.back());
      job.add_process(node, *procs.back());
    }
    return job;
  }

  /// The SchedulerPolicy contract, checked against the live engine state.
  void check_invariants(GangScheduler& scheduler) {
    SchedulerPolicy& policy = scheduler.policy();
    const int nslots = policy.num_slots();
    const int max_share = policy.max_coscheduled();
    ASSERT_GE(nslots, 0);
    ASSERT_GE(max_share, 1);
    std::vector<int> cell;
    for (int slot = 0; slot < nslots; ++slot) {
      for (int node = 0; node < cluster.size(); ++node) {
        cell.clear();
        policy.jobs_at(slot, node, cell);
        ASSERT_LE(static_cast<int>(cell.size()), max_share)
            << "cell (" << slot << ", " << node << ") oversubscribed";
        for (int id : cell) {
          ASSERT_GE(id, 0);
          ASSERT_LT(id, static_cast<int>(scheduler.jobs().size()));
          const Job& job = *scheduler.jobs()[static_cast<std::size_t>(id)];
          EXPECT_FALSE(job.done())
              << job.name() << " is done but still scheduled";
          EXPECT_TRUE(scheduler.node_alive(node))
              << job.name() << " scheduled on fenced node " << node;
          EXPECT_NE(job.process_on(node), nullptr)
              << job.name() << " scheduled on node " << node
              << " without a placement there";
          EXPECT_TRUE(scheduler.admitted(job));
        }
      }
    }
    // Work conservation: an admitted, unfinished, non-suspended job means
    // the schedule cannot be empty.
    for (const auto& job : scheduler.jobs()) {
      if (job->done() || !scheduler.admitted(*job)) continue;
      if (scheduler.migrating(*job)) continue;
      bool placed_alive = true;
      for (const auto& pl : job->processes()) {
        if (!scheduler.node_alive(pl.node)) placed_alive = false;
      }
      if (!placed_alive) continue;  // casualty handling is in flight
      EXPECT_GT(policy.num_slots(), 0)
          << job->name() << " is admitted and waiting on an empty schedule";
      break;
    }
  }

  Cluster cluster;
  std::vector<std::unique_ptr<Process>> procs;
};

TEST_P(PolicyConformance, ObstacleCourseKeepsTheContract) {
  GangParams params;
  params.quantum = kSecond;
  params.sched_policy = GetParam();
  GangScheduler scheduler(cluster, params);

  // Two jobs present at start().
  make_job(scheduler, "seed0", {0, 1, 2}, 256, 400, /*open=*/false);
  make_job(scheduler, "seed1", {0}, 128, 300, /*open=*/false);
  scheduler.start();

  // Open arrivals: mixed widths, staggered in time.
  struct Arrival {
    SimTime at;
    std::vector<int> nodes;
    std::int64_t pages;
    std::int64_t iterations;
  };
  const std::vector<Arrival> arrivals = {
      {500 * kMillisecond, {1, 2}, 192, 350},
      {1500 * kMillisecond, {2}, 96, 250},
      {2500 * kMillisecond, {0, 1, 2}, 160, 300},
      {4 * kSecond, {1}, 64, 200},
  };
  int arrived = 0;
  for (const Arrival& a : arrivals) {
    (void)cluster.sim().at(a.at, [&, a] {
      Job& job = make_job(scheduler,
                          "open" + std::to_string(arrived), a.nodes, a.pages,
                          a.iterations, /*open=*/true);
      scheduler.start_job(job);
      ++arrived;
    });
  }

  // Crash node 2 mid-run: jobs placed there must be explicitly failed, and
  // no cell may keep naming the node afterwards.
  (void)cluster.sim().at(3 * kSecond, [&] { cluster.fail_node(2); });

  // Continuous contract checking.
  std::function<void()> audit = [&] {
    check_invariants(scheduler);
    if (!scheduler.all_finished() || arrived < 4) {
      (void)cluster.sim().after(100 * kMillisecond, audit);
    }
  };
  (void)cluster.sim().after(50 * kMillisecond, audit);

  const bool finished = cluster.sim().run_until(
      [&] { return arrived == 4 && scheduler.all_finished(); }, 30 * kMinute);
  ASSERT_TRUE(finished) << "policy " << GetParam() << " stalled";

  // Every job reached an explicit terminal state: ran to completion, or was
  // abandoned (failed) — never silently dropped from the books.
  for (const auto& job : scheduler.jobs()) {
    EXPECT_TRUE(job->finished() || job->failed()) << job->name();
    EXPECT_TRUE(scheduler.admitted(*job) || job->failed()) << job->name();
    // Jobs placed on the fenced node can only have ended by failing or by
    // finishing before the fence dropped.
    if (job->failed()) {
      EXPECT_FALSE(job->finished()) << job->name();
    }
  }
  check_invariants(scheduler);
}

TEST_P(PolicyConformance, OpenArrivalRunIsThreadCountIndependent) {
  ExperimentConfig config;
  config.nodes = 2;
  config.instances = 6;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = kSecond / 2;
  config.sched_policy = GetParam();
  config.arrival_process = "poisson";
  config.arrival_mean_s = 0.5;
  config.open_max_width = 2;
  config.open_min_pages = 512;
  config.open_max_pages = 1024;
  config.open_min_iterations = 4;
  config.open_max_iterations = 10;
  config.auto_migrate = GetParam() == "dfrs";

  // The same four-run sweep must be bit-identical at 1, 2 and 8 worker
  // threads: each simulation is shared-nothing, and the policy registry's
  // name list is handed out by value.
  const std::vector<ExperimentConfig> configs(4, config);
  const std::function<RunOutcome(const ExperimentConfig&)> fn = run_open;
  const std::vector<RunOutcome> t1 = parallel_map<RunOutcome>(configs, fn, 1);
  const std::vector<RunOutcome> t2 = parallel_map<RunOutcome>(configs, fn, 2);
  const std::vector<RunOutcome> t8 = parallel_map<RunOutcome>(configs, fn, 8);
  ASSERT_EQ(t1.size(), configs.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].makespan, t2[i].makespan);
    EXPECT_EQ(t1[i].makespan, t8[i].makespan);
    EXPECT_EQ(t1[i].major_faults, t2[i].major_faults);
    EXPECT_EQ(t1[i].major_faults, t8[i].major_faults);
    EXPECT_EQ(t1[i].pages_swapped_in, t8[i].pages_swapped_in);
    EXPECT_EQ(t1[i].pages_swapped_out, t8[i].pages_swapped_out);
    EXPECT_EQ(t1[i].mean_slowdown, t8[i].mean_slowdown);
    EXPECT_EQ(t1[i].p99_slowdown, t8[i].p99_slowdown);
    EXPECT_EQ(t1[i].jobs_migrated, t8[i].jobs_migrated);
    ASSERT_EQ(t1[i].jobs.size(), t8[i].jobs.size());
    for (std::size_t j = 0; j < t1[i].jobs.size(); ++j) {
      EXPECT_EQ(t1[i].jobs[j].completion, t8[i].jobs[j].completion);
      EXPECT_EQ(t1[i].jobs[j].slowdown, t8[i].jobs[j].slowdown);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredPolicies, PolicyConformance,
                         ::testing::ValuesIn(sched_policy_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace apsim
