// Unit tests for the deterministic RNG and the statistics utilities
// (RunningStat, Histogram, TimeSeries), including parameterized
// property-style sweeps over distribution parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace apsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

class RngExponentialTest : public ::testing::TestWithParam<double> {};

TEST_P(RngExponentialTest, MeanMatches) {
  const double mean = GetParam();
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / kSamples, mean, mean * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, RngExponentialTest,
                         ::testing::Values(0.5, 1.0, 10.0, 1000.0));

TEST(Rng, NormalMoments) {
  Rng rng(19);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

class RngZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(RngZipfTest, SkewedTowardLowRanks) {
  const double theta = GetParam();
  Rng rng(23);
  constexpr std::uint64_t kN = 1000;
  std::uint64_t low = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const auto r = rng.zipf(kN, theta);
    ASSERT_LT(r, kN);
    if (r < kN / 10) ++low;
  }
  // Top decile of ranks must hold far more than 10% of the mass.
  EXPECT_GT(static_cast<double>(low) / kSamples, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Thetas, RngZipfTest,
                         ::testing::Values(0.6, 0.8, 0.99, 1.2));

TEST(RunningStat, BasicMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

// Regression: the quantile edge cases — empty histograms, q=0, q=1 and
// out-of-range q must report edges of buckets that actually hold samples,
// not the configured [lo, hi) range.

TEST(Histogram, QuantileOfEmptyHistogramIsLowerBound) {
  Histogram h(5.0, 25.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileZeroReportsFirstOccupiedBucket) {
  // All mass in one interior bucket: q=0 must not report lo.
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 7; ++i) h.add(45.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 40.0);  // lower edge of [40, 50)
  // With underflow present, q=0 correctly falls back to lo.
  h.add(-3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileZeroOfAllOverflowIsUpperBound) {
  Histogram h(0.0, 10.0, 10);
  h.add(50.0);
  h.add(60.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileOneReportsLastOccupiedBucketUpperEdge) {
  // Empty tail and no overflow: q=1 must not report hi.
  Histogram h(0.0, 100.0, 10);
  h.add(12.0);
  h.add(14.0);
  h.add(37.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);  // upper edge of [30, 40)
  // Overflow reintroduces mass above the buckets: q=1 is hi again.
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileClampsOutOfRangeQ) {
  Histogram h(0.0, 100.0, 10);
  h.add(12.0);
  h.add(37.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(TimeSeries, BucketsAccumulate) {
  TimeSeries ts(kSecond);
  ts.add(0, 1.0);
  ts.add(kSecond / 2, 2.0);
  ts.add(kSecond, 4.0);
  ts.add(10 * kSecond, 8.0);
  ASSERT_EQ(ts.buckets().size(), 11u);
  EXPECT_DOUBLE_EQ(ts.buckets()[0], 3.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[1], 4.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[10], 8.0);
  EXPECT_DOUBLE_EQ(ts.total(), 15.0);
  EXPECT_DOUBLE_EQ(ts.peak(), 8.0);
}

TEST(TimeSeries, SumRange) {
  TimeSeries ts(kSecond);
  for (int i = 0; i < 10; ++i) ts.add(i * kSecond, 1.0);
  EXPECT_DOUBLE_EQ(ts.sum_range(0, 10 * kSecond), 10.0);
  EXPECT_DOUBLE_EQ(ts.sum_range(2 * kSecond, 5 * kSecond), 3.0);
  EXPECT_DOUBLE_EQ(ts.sum_range(5 * kSecond, 5 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(ts.sum_range(20 * kSecond, 30 * kSecond), 0.0);
}

TEST(TimeSeries, NegativeTimesClampToOrigin) {
  TimeSeries ts(kSecond);
  ts.add(-5 * kSecond, 3.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[0], 3.0);
}

}  // namespace
}  // namespace apsim
