// End-to-end smoke tests: the whole stack (simulator, disk, VMM, CPU,
// gang scheduler, adaptive pager, workloads, harness) on scaled-down
// configurations. Fine-grained per-module tests live in the other files.

#include <gtest/gtest.h>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

namespace apsim {
namespace {

ExperimentConfig tiny_config(PolicySet policy) {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kW;  // ~15 MB footprint
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.policy = policy;
  config.quantum = 10 * kSecond;
  config.iterations_scale = 0.2;
  config.seed = 7;
  return config;
}

TEST(Smoke, BatchRunCompletes) {
  auto config = tiny_config(PolicySet::original());
  config.batch_mode = true;
  const RunOutcome outcome = run_batch(config);
  ASSERT_GT(outcome.makespan, 0);
  ASSERT_EQ(outcome.jobs.size(), 2u);
  EXPECT_GT(outcome.jobs[0].completion, 0);
  EXPECT_GT(outcome.jobs[1].completion, outcome.jobs[0].completion);
}

TEST(Smoke, GangRunCompletesAndSwitches) {
  const RunOutcome outcome = run_gang(tiny_config(PolicySet::original()));
  ASSERT_GT(outcome.makespan, 0);
  EXPECT_GT(outcome.switches, 0);
  EXPECT_GT(outcome.major_faults, 0u) << "memory was not overcommitted";
}

TEST(Smoke, AdaptivePolicyBeatsOriginalUnderMemoryStress) {
  const auto orig = evaluate(tiny_config(PolicySet::original()));
  const auto adaptive = evaluate(tiny_config(PolicySet::all()));
  ASSERT_GT(orig.gang.makespan, 0);
  ASSERT_GT(adaptive.gang.makespan, 0);
  // Same batch baseline, deterministic runs.
  EXPECT_EQ(orig.batch.makespan, adaptive.batch.makespan);
  EXPECT_LT(adaptive.gang.makespan, orig.gang.makespan);
  EXPECT_GT(orig.overhead, adaptive.overhead);
}

TEST(Smoke, DeterministicAcrossRuns) {
  const RunOutcome a = run_gang(tiny_config(PolicySet::all()));
  const RunOutcome b = run_gang(tiny_config(PolicySet::all()));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
  EXPECT_EQ(a.pages_swapped_out, b.pages_swapped_out);
}

}  // namespace
}  // namespace apsim
