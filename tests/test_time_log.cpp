// Unit tests for time helpers and the logger.

#include <gtest/gtest.h>

#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace apsim {
namespace {

TEST(Time, UnitConstructors) {
  EXPECT_EQ(microseconds(3), 3000);
  EXPECT_EQ(milliseconds(3), 3'000'000);
  EXPECT_EQ(seconds(3), 3'000'000'000);
  EXPECT_EQ(minutes(2), 120 * kSecond);
  EXPECT_EQ(5 * kMinute, seconds(300));
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(500 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(kSecond), 1000.0);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(90 * kSecond), "1m30.0s");
  EXPECT_EQ(format_duration(2 * kSecond), "2.000s");
  EXPECT_EQ(format_duration(5 * kMillisecond), "5.000ms");
  EXPECT_EQ(format_duration(250 * kMicrosecond), "250us");
  EXPECT_EQ(format_duration(-2 * kSecond), "-2.000s");
}

TEST(Log, LevelsFilter) {
  Logger logger("test", nullptr, nullptr, LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(Log, WritesToSink) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Simulator sim;
  Logger logger("unit", &sim,
                [](const void* ctx) {
                  return static_cast<const Simulator*>(ctx)->now();
                },
                LogLevel::kInfo, sink);
  logger.info("hello %d", 42);
  logger.debug("filtered %d", 1);  // below level: not written
  std::rewind(sink);
  char buf[256] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, sink), nullptr);
  EXPECT_NE(std::string(buf).find("hello 42"), std::string::npos);
  EXPECT_NE(std::string(buf).find("unit"), std::string::npos);
  EXPECT_EQ(std::fgets(buf, sizeof buf, sink), nullptr);  // only one line
  std::fclose(sink);
}

TEST(Log, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace apsim
