// Unit tests for the paper's mechanisms end to end at the pager level:
// selective page-out victim ordering, aggressive page-out sizing, adaptive
// page-in record/replay, and background writing.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/adaptive_pager.hpp"

namespace apsim {
namespace {

struct PagerFixture : ::testing::Test {
  static NodeParams node_params() {
    NodeParams n;
    n.vmm.total_frames = 256;
    n.vmm.freepages_min = 8;
    n.vmm.freepages_low = 12;
    n.vmm.freepages_high = 16;
    n.vmm.page_cluster = 8;
    n.disk.num_blocks = 1 << 16;
    return n;
  }

  PagerFixture() : cluster(1, node_params()) {}

  Vmm& vmm() { return cluster.node(0).vmm(); }
  Simulator& sim() { return cluster.sim(); }

  Pid make_populated(std::int64_t pages, std::int64_t populate_count) {
    const Pid pid = vmm().create_process(pages);
    for (VPage v = 0; v < populate_count; ++v) {
      if (!vmm().touch(pid, v, true)) {
        bool done = false;
        vmm().fault(pid, v, true, [&] { done = true; });
        sim().run();
        EXPECT_TRUE(done);
      }
    }
    return pid;
  }

  Cluster cluster;
};

TEST_F(PagerFixture, SelectivePolicyEvictsVictimFirst) {
  const Pid a = make_populated(256, 100);
  const Pid b = make_populated(256, 100);  // a was partially evicted already

  auto policy = std::make_unique<SelectiveReclaimPolicy>();
  auto* selective = policy.get();
  vmm().set_reclaim_policy(std::move(policy));
  selective->set_victim_process(b);

  const auto a_resident = vmm().space(a).resident_pages();
  bool done = false;
  vmm().request_free_frames(vmm().free_frames() + 32, [&] { done = true; });
  sim().run();
  ASSERT_TRUE(done);
  // Only b lost pages; a's residual set is untouched (no false eviction).
  EXPECT_EQ(vmm().space(a).resident_pages(), a_resident);
  EXPECT_LT(vmm().space(b).resident_pages(), 100);
}

TEST_F(PagerFixture, SelectivePolicyEvictsOldestFirst) {
  const Pid a = make_populated(256, 60);
  // Re-touch pages 0..29 so pages 30..59 are the oldest.
  sim().after(kSecond, [&] {
    for (VPage v = 0; v < 30; ++v) {
      EXPECT_TRUE(vmm().touch(a, v, false));
    }
  });
  sim().run();

  auto policy = std::make_unique<SelectiveReclaimPolicy>();
  auto* selective = policy.get();
  vmm().set_reclaim_policy(std::move(policy));
  selective->set_victim_process(a);

  auto victims = vmm().reclaim_policy().select_victims(vmm(), 30);
  ASSERT_EQ(victims.size(), 30u);
  for (const auto& victim : victims) {
    EXPECT_EQ(victim.pid, a);
    EXPECT_GE(victim.vpage, 30) << "evicted a recently-touched page first";
  }
}

TEST_F(PagerFixture, SelectivePolicyFallsBackWhenVictimDrained) {
  const Pid a = make_populated(256, 50);
  const Pid b = make_populated(256, 50);
  auto policy = std::make_unique<SelectiveReclaimPolicy>();
  auto* selective = policy.get();
  vmm().set_reclaim_policy(std::move(policy));
  selective->set_victim_process(b);

  // Demand more than b can provide: the fallback must supply a's pages.
  auto victims = vmm().reclaim_policy().select_victims(vmm(), 50);
  ASSERT_EQ(victims.size(), 50u);
  const auto a_before = vmm().space(a).resident_pages();
  bool done = false;
  vmm().request_free_frames(vmm().free_frames() + 80, [&] { done = true; });
  sim().run();
  ASSERT_TRUE(done);
  // b is (nearly) drained before the fallback starts on a.
  EXPECT_LE(vmm().space(b).resident_pages(), 8);
  EXPECT_LT(vmm().space(a).resident_pages(), a_before);
}

TEST_F(PagerFixture, AdaptivePageOutAggressivelyFreesForIncomingWs) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("so/ao");
  AdaptivePager pager(cluster.node(0), params);

  const Pid out = make_populated(256, 150);
  const Pid in = make_populated(256, 60);
  pager.register_process(out);
  pager.register_process(in);

  // Teach the estimator in's working set: one epoch of 60 touches.
  pager.on_quantum_start(in);
  for (VPage v = 0; v < 60; ++v) {
    EXPECT_TRUE(vmm().touch(in, v, false));
  }
  pager.on_quantum_end(in);
  EXPECT_EQ(pager.ws_estimate(in), 60);

  // in's working set is fully resident: aggressive page-out has nothing to
  // make room for and must not touch the outgoing process.
  pager.adaptive_page_out(out, in);
  sim().run();
  EXPECT_EQ(vmm().space(out).resident_pages(), 150);
  EXPECT_EQ(pager.stats().aggressive_requests, 0u);

  // Deschedule in and evict its working set (selective page-out now targets
  // it), then switch again: the missing 60 pages must be freed from the
  // outgoing process up front.
  pager.adaptive_page_out(in, out);  // reverse switch: in becomes outgoing
  bool evicted = false;
  vmm().request_free_frames(vmm().free_frames() +
                                vmm().space(in).resident_pages(),
                            [&] { evicted = true; });
  sim().run();
  ASSERT_TRUE(evicted);
  ASSERT_EQ(vmm().space(in).resident_pages(), 0);
  // Wire away the slack so the free pool cannot cover in's working set.
  (void)vmm().wire_down(vmm().free_frames() - 20);
  pager.adaptive_page_out(out, in);
  sim().run();
  // The missing working set (60 pages) was freed from the outgoing process.
  EXPECT_GE(vmm().free_frames(), 60);
  EXPECT_LT(vmm().space(out).resident_pages(), 150);
  EXPECT_EQ(pager.stats().aggressive_requests, 1u);
}

TEST_F(PagerFixture, WsHintOverridesKernelEstimate) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("so/ao");
  AdaptivePager pager(cluster.node(0), params);
  const Pid out = make_populated(256, 200);
  const Pid in = vmm().create_process(256);
  pager.register_process(out);
  pager.register_process(in);
  pager.adaptive_page_out(out, in, /*ws_pages_hint=*/100);
  sim().run();
  EXPECT_GE(vmm().free_frames(), 100);
}

TEST_F(PagerFixture, RecorderCapturesFlushesOfDescheduledProcess) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("so/ai");
  AdaptivePager pager(cluster.node(0), params);

  const Pid out = make_populated(256, 100);
  const Pid in = vmm().create_process(256);
  pager.register_process(out);
  pager.register_process(in);

  pager.adaptive_page_out(out, in);
  pager.on_quantum_start(in);  // out is now descheduled; record its flushes
  bool done = false;
  vmm().request_free_frames(vmm().free_frames() + 64, [&] { done = true; });
  sim().run();
  ASSERT_TRUE(done);
  EXPECT_GE(pager.recorder(out).pages(), 64);
  EXPECT_GT(pager.stats().pages_recorded, 0u);
  // Sequential eviction compresses to very few runs.
  EXPECT_LE(pager.recorder(out).runs().size(), 4u);
}

TEST_F(PagerFixture, AdaptivePageInReplaysAndClearsRecord) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("so/ao/ai");
  AdaptivePager pager(cluster.node(0), params);

  const Pid a = make_populated(256, 120);
  const Pid b = make_populated(256, 120);
  pager.register_process(a);
  pager.register_process(b);

  // Switch to b: a's pages get flushed and recorded. (b's residual already
  // covers most of its working set, so force the flush explicitly, as
  // sustained memory pressure during b's quantum would.)
  pager.adaptive_page_out(a, b, 120);
  pager.on_quantum_start(b);
  bool flushed = false;
  vmm().request_free_frames(
      vmm().free_frames() + vmm().space(a).resident_pages(),
      [&] { flushed = true; });
  sim().run();
  ASSERT_TRUE(flushed);
  const auto recorded = pager.recorder(a).pages();
  ASSERT_GT(recorded, 0);

  // Switch back to a: replay.
  pager.adaptive_page_out(b, a, 120);
  pager.on_quantum_start(a);
  bool replay_done = false;
  pager.adaptive_page_in(a, [&] { replay_done = true; });
  sim().run();
  EXPECT_TRUE(replay_done);
  EXPECT_TRUE(pager.recorder(a).empty());
  EXPECT_EQ(pager.stats().pages_replayed,
            static_cast<std::uint64_t>(recorded));
  // The replayed pages are resident again.
  EXPECT_GE(vmm().space(a).resident_pages(), recorded / 2);
}

TEST_F(PagerFixture, AdaptivePageInNoopWithoutPolicy) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("so");
  AdaptivePager pager(cluster.node(0), params);
  const Pid a = make_populated(256, 10);
  pager.register_process(a);
  bool done = false;
  pager.adaptive_page_in(a, [&] { done = true; });
  sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(pager.stats().pages_replayed, 0u);
}

TEST_F(PagerFixture, BackgroundWriterCleansDirtyPages) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("bg");
  params.bg_batch = 16;
  params.bg_interval = 10 * kMillisecond;
  AdaptivePager pager(cluster.node(0), params);

  const Pid a = make_populated(256, 80);
  pager.register_process(a);
  ASSERT_EQ(vmm().space(a).dirty_pages(), 80);
  pager.start_bgwrite(a);
  sim().run(sim().now() + kSecond);
  pager.stop_bgwrite();
  EXPECT_GT(pager.stats().bg_pages_written, 0u);
  EXPECT_LT(vmm().space(a).dirty_pages(), 80);
  // Pages stay resident: background writing cleans without unmapping.
  EXPECT_EQ(vmm().space(a).resident_pages(), 80);
}

TEST_F(PagerFixture, StopBgwriteHaltsTicks) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("bg");
  params.bg_interval = 10 * kMillisecond;
  AdaptivePager pager(cluster.node(0), params);
  const Pid a = make_populated(256, 80);
  pager.start_bgwrite(a);
  sim().run(sim().now() + 50 * kMillisecond);
  pager.stop_bgwrite();
  const auto written = pager.stats().bg_pages_written;
  sim().run(sim().now() + kSecond);
  EXPECT_EQ(pager.stats().bg_pages_written, written);
}

TEST_F(PagerFixture, BgwriteDisabledWithoutPolicy) {
  AdaptivePagerParams params;
  params.policy = PolicySet::parse("so");
  AdaptivePager pager(cluster.node(0), params);
  const Pid a = make_populated(256, 40);
  pager.start_bgwrite(a);
  sim().run(sim().now() + kSecond);
  EXPECT_EQ(pager.stats().bg_pages_written, 0u);
}

}  // namespace
}  // namespace apsim
