// Tests for the coordinated checkpoint/restart subsystem: the pure restart
// planner, program-cursor save/restore, communicator restart hooks, the
// config/scenario surface, end-to-end crash recovery through the harness,
// bit-identity when checkpointing is disabled, determinism (repeat runs and
// thread-count-independent sweeps), fencing idempotence, the recoverable vs
// fatal lost-page split, and chaos property runs where no job may be aborted
// without a recovery attempt.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "gang/gang_scheduler.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "net/mpi.hpp"
#include "recover/checkpoint_manager.hpp"
#include "tier/tier_manager.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

// ---------------------------------------------------------------------------
// RestartPlanner (pure)

RestartCandidate candidate(int node, std::int64_t swap_slots,
                           std::int64_t usable = 1000,
                           std::int64_t min_frames = 100) {
  RestartCandidate c;
  c.node = node;
  c.free_swap_slots = swap_slots;
  c.usable_frames = usable;
  c.min_frames = min_frames;
  return c;
}

TEST(RestartPlanner, SpreadBalancesRanksAcrossFeasibleNodes) {
  const auto plan = RestartPlanner::plan(
      {10, 10, 10, 10}, {candidate(0, 100), candidate(1, 100)},
      RestartPlacement::kSpread);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(*plan, (std::vector<int>{0, 1, 0, 1}));
}

TEST(RestartPlanner, PackedFillsTheFirstFeasibleNodeFirst) {
  const auto plan = RestartPlanner::plan(
      {10, 10, 10}, {candidate(0, 25), candidate(1, 100)},
      RestartPlacement::kPacked);
  ASSERT_TRUE(plan.has_value());
  // Node 0's swap budget covers two ranks; the third spills to node 1.
  EXPECT_EQ(*plan, (std::vector<int>{0, 0, 1}));
}

TEST(RestartPlanner, SwapBudgetIsConsumedAcrossRanks) {
  // Each rank fits alone, but the budget only covers one per node.
  const auto plan = RestartPlanner::plan(
      {60, 60, 60}, {candidate(0, 100), candidate(1, 100)},
      RestartPlacement::kSpread);
  EXPECT_FALSE(plan.has_value());
}

TEST(RestartPlanner, NodesBelowTheFrameFloorAreExcluded) {
  const auto plan = RestartPlanner::plan(
      {10}, {candidate(0, 100, /*usable=*/50, /*min_frames=*/100)},
      RestartPlacement::kSpread);
  EXPECT_FALSE(plan.has_value());

  const auto ok = RestartPlanner::plan(
      {10},
      {candidate(0, 100, 50, 100), candidate(1, 100, 200, 100)},
      RestartPlacement::kSpread);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, std::vector<int>{1});
}

TEST(RestartPlanner, CandidateOrderDoesNotMatter) {
  const std::vector<std::int64_t> pages{10, 10, 10};
  const auto a = RestartPlanner::plan(
      pages, {candidate(0, 100), candidate(1, 100)}, RestartPlacement::kSpread);
  const auto b = RestartPlanner::plan(
      pages, {candidate(1, 100), candidate(0, 100)}, RestartPlacement::kSpread);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(RestartPlanner, EnumsParseAndRoundTrip) {
  EXPECT_EQ(parse_restart_placement("spread"), RestartPlacement::kSpread);
  EXPECT_EQ(parse_restart_placement("packed"), RestartPlacement::kPacked);
  EXPECT_EQ(to_string(RestartPlacement::kPacked), "packed");
  EXPECT_THROW((void)parse_restart_placement("mostly-random"),
               std::invalid_argument);
  EXPECT_EQ(parse_lost_work_model("cpu"), LostWorkModel::kCpu);
  EXPECT_EQ(parse_lost_work_model("wall"), LostWorkModel::kWall);
  EXPECT_EQ(to_string(LostWorkModel::kWall), "wall");
  EXPECT_THROW((void)parse_lost_work_model("imaginary"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Program cursors

TEST(ProgramCursor, IterativeProgramRoundTripsMidRun) {
  auto make = [] {
    std::vector<Op> prologue{Op::compute_op(kMillisecond)};
    std::vector<Op> cycle{Op::compute_op(kMillisecond), Op::compute_op(kMillisecond)};
    return IterativeProgram(std::move(prologue), std::move(cycle), 3);
  };
  IterativeProgram a = make();
  (void)a.next();  // prologue op
  (void)a.next();  // cycle[0] of iter 0
  (void)a.next();  // cycle[1] of iter 0
  (void)a.next();  // cycle[0] of iter 1
  const auto cursor = a.save_cursor();
  ASSERT_TRUE(cursor.has_value());

  IterativeProgram b = make();
  ASSERT_TRUE(b.restore_cursor(*cursor));
  // The restored program must replay the identical remaining op sequence.
  for (;;) {
    const Op oa = a.next();
    const Op ob = b.next();
    EXPECT_EQ(oa.kind, ob.kind);
    if (oa.kind == Op::Kind::kDone) break;
  }
  EXPECT_DOUBLE_EQ(a.progress(), b.progress());
}

TEST(ProgramCursor, RejectsOutOfRangeCursors) {
  IterativeProgram program({}, {Op::compute_op(kMillisecond)}, 2);
  ProgramCursor bad_iter;
  bad_iter.iter = 99;
  EXPECT_FALSE(program.restore_cursor(bad_iter));
  ProgramCursor bad_pos;
  bad_pos.pos = 99;
  EXPECT_FALSE(program.restore_cursor(bad_pos));
}

// ---------------------------------------------------------------------------
// Communicator restart hooks

TEST(MpiComm, RestartHooksResetSequencesAndOpenCollectives) {
  Simulator sim(1);
  Network net(sim, 2);
  MpiComm comm(sim, net, 2);
  EXPECT_EQ(comm.rank_seqs(), (std::vector<std::uint64_t>{0, 0}));
  EXPECT_FALSE(comm.collective_open(0));

  comm.rebind_node(1, 0);  // no crash; takes effect on the next enter
  comm.reset_for_restart({4, 4});
  EXPECT_EQ(comm.rank_seqs(), (std::vector<std::uint64_t>{4, 4}));
  EXPECT_FALSE(comm.collective_open(3));
  EXPECT_FALSE(comm.collective_open(4));
}

// ---------------------------------------------------------------------------
// Config and scenario surface

TEST(RecoverConfig, ValidatesCheckpointKnobs) {
  ExperimentConfig config;
  config.checkpoint_interval = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.checkpoint_interval = 0;
  config.ckpt_max_retries = -2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.ckpt_max_retries = 0;
  EXPECT_NO_THROW(config.validate());
}

TEST(RecoverConfig, ScenarioKeysApplyAndReject) {
  ExperimentConfig config;
  apply_scenario_key(config, "checkpoint_interval_s", "7.5");
  EXPECT_EQ(config.checkpoint_interval,
            static_cast<SimDuration>(7.5 * static_cast<double>(kSecond)));
  apply_scenario_key(config, "ckpt_incremental", "false");
  EXPECT_FALSE(config.ckpt_incremental);
  apply_scenario_key(config, "ckpt_max_retries", "5");
  EXPECT_EQ(config.ckpt_max_retries, 5);
  apply_scenario_key(config, "restart_placement", "packed");
  EXPECT_EQ(config.restart_placement, RestartPlacement::kPacked);
  apply_scenario_key(config, "lost_work_model", "wall");
  EXPECT_EQ(config.lost_work_model, LostWorkModel::kWall);
  EXPECT_THROW(apply_scenario_key(config, "restart_placement", "bogus"),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_key(config, "lost_work_model", "bogus"),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_key(config, "ckpt_max_retries", "many"),
               std::invalid_argument);
}

TEST(RecoverConfig, CheckpointRegionDoublesTheDiskOnlyWhenEnabled) {
  ExperimentConfig config;
  const NodeParams off = config.make_node_params();
  EXPECT_EQ(off.disk.num_blocks, off.swap_slots);
  config.checkpoint_interval = 10 * kSecond;
  const NodeParams on = config.make_node_params();
  EXPECT_EQ(on.swap_slots, off.swap_slots);
  EXPECT_EQ(on.disk.num_blocks, on.swap_slots * 2);
}

TEST(RecoverConfig, CkptFaultSpecParsesAndRoundTrips) {
  const auto spec = FaultSpec::parse("ckpt_fault start_s=5 end_s=50 p=0.25");
  EXPECT_EQ(spec.kind, FaultKind::kCkptFault);
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(FaultSpec::parse(spec.to_string()).kind, FaultKind::kCkptFault);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the harness

ExperimentConfig recover_config() {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kW;
  config.nodes = 2;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * kSecond;
  config.iterations_scale = 0.2;
  config.checkpoint_interval = 2 * kSecond;
  return config;
}

TEST(RecoverEndToEnd, NodeCrashIsRecoveredFromTheLastCheckpoint) {
  auto config = recover_config();
  config.faults.add(FaultSpec::parse("node_crash node=1 at_s=6"));
  const RunOutcome outcome = run_gang(config);
  ASSERT_GT(outcome.makespan, 0) << "recovered jobs must still finish";
  EXPECT_EQ(outcome.jobs_failed, 0);
  EXPECT_EQ(outcome.nodes_failed, 1);
  EXPECT_EQ(outcome.jobs_recovered, 2);  // both jobs spanned the dead node
  EXPECT_GT(outcome.checkpoints_taken, 0u);
  EXPECT_GT(outcome.bytes_checkpointed, 0u);
  EXPECT_GT(outcome.pages_staged, 0u);  // images staged into survivor swap
  EXPECT_GT(outcome.disk_blocks_written, 0u);
  EXPECT_GT(outcome.lost_work_ms, 0.0);
  for (const auto& job : outcome.jobs) {
    EXPECT_FALSE(job.failed) << job.name;
    EXPECT_TRUE(job.recovered) << job.name;
  }
}

TEST(RecoverEndToEnd, CheckpointIoIsVisibleInDiskCountersAndTracer) {
  auto baseline = recover_config();
  baseline.checkpoint_interval = 0;
  const RunOutcome off = run_gang(baseline);

  auto config = recover_config();
  config.trace_json = "-";  // collect spans in memory
  const RunOutcome on = run_gang(config);
  // Same fault-free run, but every committed checkpoint paid real blocks.
  EXPECT_GT(on.checkpoints_taken, 0u);
  EXPECT_GT(on.disk_blocks_written, off.disk_blocks_written);
  ASSERT_NE(on.trace, nullptr);
  bool saw_ckpt_phase = false;
  for (const auto& phase : on.switch_phases) {
    if (phase.category == "ckpt" && phase.name == "checkpoint") {
      saw_ckpt_phase = true;
      EXPECT_GT(phase.count, 0u);
    }
  }
  EXPECT_TRUE(saw_ckpt_phase) << "checkpoint spans missing from the tracer";
}

TEST(RecoverEndToEnd, CheckpointWriteFaultsAreRetriedWithBackoff) {
  auto config = recover_config();
  config.faults.add(FaultSpec::parse("ckpt_fault p=0.4"));
  config.ckpt_max_retries = 6;
  const RunOutcome outcome = run_gang(config);
  ASSERT_GT(outcome.makespan, 0);
  EXPECT_GT(outcome.ckpt_io_retries, 0u);
  EXPECT_GT(outcome.checkpoints_taken, 0u);  // the ladder rode out p=0.4
  EXPECT_EQ(outcome.jobs_failed, 0);
}

TEST(RecoverEndToEnd, RestartGivesUpCleanlyWithNoSurvivingPlacement) {
  // Single node, persistent disk death: the lost page becomes a recovery
  // attempt, but the only candidate node has a dead disk, so the planner
  // finds nothing and the job is abandoned — cleanly, before the horizon.
  auto config = recover_config();
  config.nodes = 1;
  config.faults.add(FaultSpec::parse("disk_persistent start_s=6"));
  const RunOutcome outcome = run_gang(config);
  // makespan stays -1 when no job ever succeeds, even though the run
  // terminated; the failure counters below are the real signal.
  EXPECT_EQ(outcome.makespan, -1);
  EXPECT_EQ(outcome.jobs_failed, 2);
  EXPECT_GT(outcome.lost_pages_recovered, 0u);  // attempt was made
  EXPECT_GT(outcome.restarts_failed, 0);        // ... and gave up
  EXPECT_EQ(outcome.jobs_recovered, 0);
}

TEST(RecoverEndToEnd, LostPagesOnOneNodeRecoverOntoTheOther) {
  // Kill only node 1's disk. Jobs lose pages there (fatal before this PR),
  // but node 0's disk is healthy, so both jobs restart packed onto node 0
  // and finish. Squeeze usable memory so the gangs actually page: at 22 MB
  // the two-node LU.W split is fully resident and a dead swap disk would
  // never surface.
  auto config = recover_config();
  config.usable_memory_mb = 8.0;
  config.faults.add(FaultSpec::parse("disk_persistent node=1 start_s=6"));
  const RunOutcome outcome = run_gang(config);
  ASSERT_GT(outcome.makespan, 0);
  EXPECT_EQ(outcome.jobs_failed, 0);
  EXPECT_GT(outcome.lost_pages_recovered, 0u);
  EXPECT_EQ(outcome.lost_pages_fatal, 0u);
  EXPECT_EQ(outcome.jobs_recovered, 2);
}

TEST(RecoverEndToEnd, LostPagesStayFatalWithCheckpointingOff) {
  auto config = recover_config();
  config.usable_memory_mb = 8.0;  // force paging (see previous test)
  config.checkpoint_interval = 0;
  config.faults.add(FaultSpec::parse("disk_persistent node=1 start_s=6"));
  const RunOutcome outcome = run_gang(config);
  EXPECT_EQ(outcome.jobs_failed, 2);
  EXPECT_GT(outcome.lost_pages_fatal, 0u);
  EXPECT_EQ(outcome.lost_pages_recovered, 0u);
  EXPECT_EQ(outcome.jobs_recovered, 0);
}

// ---------------------------------------------------------------------------
// Bit-identity with checkpointing disabled, and determinism when enabled

void expect_core_counters_equal(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
  EXPECT_EQ(a.pages_swapped_out, b.pages_swapped_out);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.false_evictions, b.false_evictions);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.jobs_failed, b.jobs_failed);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.disk_blocks_written, b.disk_blocks_written);
  EXPECT_EQ(a.disk_blocks_read, b.disk_blocks_read);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].completion, b.jobs[i].completion);
    EXPECT_EQ(a.jobs[i].failed, b.jobs[i].failed);
    EXPECT_EQ(a.jobs[i].cpu_time, b.jobs[i].cpu_time);
  }
}

TEST(RecoverBitIdentity, DisabledCheckpointingLeavesRunsUntouched) {
  // With checkpoint_interval = 0 no manager is constructed; every other
  // recovery knob must be inert, even under faults.
  auto plain = recover_config();
  plain.checkpoint_interval = 0;
  plain.faults.add(FaultSpec::parse("disk_transient start_s=1 end_s=20 p=0.1"));

  auto knobs = plain;
  knobs.ckpt_incremental = false;
  knobs.ckpt_max_retries = 9;
  knobs.restart_placement = RestartPlacement::kPacked;
  knobs.lost_work_model = LostWorkModel::kWall;

  const RunOutcome a = run_gang(plain);
  const RunOutcome b = run_gang(knobs);
  expect_core_counters_equal(a, b);
  EXPECT_EQ(a.checkpoints_taken, 0u);
  EXPECT_EQ(a.bytes_checkpointed, 0u);
  EXPECT_EQ(a.jobs_recovered, 0);
  EXPECT_EQ(a.lost_work_ms, 0.0);
}

TEST(RecoverDeterminism, CrashRecoveryRunsAreBitReproducible) {
  auto config = recover_config();
  config.faults.add(FaultSpec::parse("node_crash node=1 at_s=6"));
  config.faults.add(FaultSpec::parse("ckpt_fault p=0.2"));
  const RunOutcome a = run_gang(config);
  const RunOutcome b = run_gang(config);
  expect_core_counters_equal(a, b);
  EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);
  EXPECT_EQ(a.ckpt_io_retries, b.ckpt_io_retries);
  EXPECT_EQ(a.bytes_checkpointed, b.bytes_checkpointed);
  EXPECT_EQ(a.pages_staged, b.pages_staged);
  EXPECT_EQ(a.jobs_recovered, b.jobs_recovered);
  EXPECT_EQ(a.lost_work_ms, b.lost_work_ms);
}

TEST(RecoverDeterminism, RecoverySweepIsThreadCountIndependent) {
  // One recovering config per placement/accounting combination, mapped at 1,
  // 2 and 8 threads: byte-equal outcomes, like the main determinism suite.
  std::vector<ExperimentConfig> configs;
  for (const RestartPlacement placement :
       {RestartPlacement::kSpread, RestartPlacement::kPacked}) {
    for (const LostWorkModel model : {LostWorkModel::kCpu, LostWorkModel::kWall}) {
      auto config = recover_config();
      config.restart_placement = placement;
      config.lost_work_model = model;
      config.faults.add(FaultSpec::parse("node_crash node=1 at_s=6"));
      configs.push_back(config);
    }
  }
  const std::function<RunOutcome(const ExperimentConfig&)> fn = run_gang;
  const auto serial = parallel_map<RunOutcome>(configs, fn, 1);
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = parallel_map<RunOutcome>(configs, fn, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("config " + std::to_string(i) + " at " +
                   std::to_string(threads) + " threads");
      expect_core_counters_equal(serial[i], parallel[i]);
      EXPECT_EQ(serial[i].checkpoints_taken, parallel[i].checkpoints_taken);
      EXPECT_EQ(serial[i].jobs_recovered, parallel[i].jobs_recovered);
      EXPECT_EQ(serial[i].lost_work_ms, parallel[i].lost_work_ms);
    }
  }
}

// ---------------------------------------------------------------------------
// Fencing idempotence

TEST(Fencing, DoubleFenceIsIdempotent) {
  Cluster cluster(2, NodeParams{}, NetParams{}, /*seed=*/1);
  GangScheduler scheduler(cluster, GangParams{});
  Job& job = scheduler.create_job("solo");
  SweepOptions options;
  options.pages = 32;
  // Long enough (~3.2 s of compute) that the job is still running when the
  // 1 s and 2 s fence events fire; otherwise the asserts race the crash.
  options.iterations = 5000;
  options.compute_per_touch = 20 * kMicrosecond;
  const Pid pid = cluster.node(0).vmm().create_process(options.pages);
  auto proc = std::make_unique<Process>("solo:0", pid,
                                        make_sweep_program(options));
  cluster.node(0).cpu().attach(*proc);
  job.add_process(0, *proc);
  scheduler.start();

  cluster.sim().after(kSecond, [&] {
    cluster.fail_node(1);
    cluster.fail_node(1);  // STONITH races the crash plan: must be a no-op
  });
  cluster.sim().after(2 * kSecond, [&] { cluster.fail_node(1); });

  EXPECT_TRUE(cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 10 * kMinute));
  EXPECT_EQ(scheduler.stats().nodes_failed, 1);
  EXPECT_FALSE(cluster.node_alive(1));
  EXPECT_FALSE(job.failed());
  (void)cluster.sim().run_until([] { return false; },
                                cluster.sim().now() + kMinute);
  EXPECT_EQ(cluster.sim().pending_events(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos with recovery enabled

struct RecoverChaosOutcome {
  bool finished = false;
  std::vector<SimTime> finish_times;
  std::vector<bool> failed;
  std::vector<int> restarts;
  std::uint64_t checkpoints = 0;
  std::uint64_t pages_staged = 0;
  int jobs_recovered = 0;
  int restarts_failed = 0;
  int nodes_failed = 0;

  friend bool operator==(const RecoverChaosOutcome&,
                         const RecoverChaosOutcome&) = default;
};

RecoverChaosOutcome run_recover_chaos(std::uint64_t seed) {
  constexpr int kNodes = 2;
  const FaultPlan plan = FaultPlan::random(seed, kNodes, 60 * kSecond);
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.to_string());

  NodeParams node_params;
  node_params.vmm.total_frames = 512;
  node_params.vmm.freepages_min = 8;
  node_params.vmm.freepages_low = 12;
  node_params.vmm.freepages_high = 16;
  node_params.swap_slots = 1 << 15;
  node_params.disk.num_blocks = 1 << 16;  // swap + checkpoint region

  Cluster cluster(kNodes, node_params, NetParams{}, seed, plan);
  GangParams params;
  params.quantum = 2 * kSecond;
  if (plan.disturbs_control_plane()) {
    params.switch_watchdog = 50 * kMillisecond;
  }
  GangScheduler scheduler(cluster, params);

  std::vector<std::unique_ptr<Process>> procs;
  auto add_job = [&](const std::string& name, const std::vector<int>& nodes) {
    Job& job = scheduler.create_job(name);
    for (int n : nodes) {
      SweepOptions options;
      options.pages = 300;
      // ~15 s of compute per rank: timesharing three jobs stretches the run
      // across the random crash window (0.2-0.7 x 60 s), so crashes land on
      // live jobs instead of after everything has already finished.
      options.iterations = 2500;
      options.compute_per_touch = 20 * kMicrosecond;
      const Pid pid = cluster.node(n).vmm().create_process(options.pages);
      procs.push_back(std::make_unique<Process>(
          name + ":" + std::to_string(n), pid, make_sweep_program(options)));
      cluster.node(n).cpu().attach(*procs.back());
      job.add_process(n, *procs.back());
    }
  };
  add_job("wide-a", {0, 1});
  add_job("wide-b", {0, 1});
  add_job("solo", {0});

  CheckpointParams cparams;
  cparams.interval = 2 * kSecond;
  CheckpointManager ckpt(cluster, scheduler, cparams);
  scheduler.start();
  ckpt.start();

  RecoverChaosOutcome out;
  out.finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute);
  EXPECT_TRUE(out.finished) << "run did not terminate";
  (void)cluster.sim().run_until([] { return false; },
                                cluster.sim().now() + 5 * kMinute);
  EXPECT_EQ(cluster.sim().pending_events(), 0u) << "event queue did not drain";

  for (const auto& job : scheduler.jobs()) {
    EXPECT_TRUE(job->done()) << job->name();
    out.finish_times.push_back(job->finished_at());
    out.failed.push_back(job->failed());
    out.restarts.push_back(ckpt.restarts_of(job->id()));
    // The headline property: with checkpointing on, no job is ever aborted
    // without a recovery attempt. Sweep programs are checkpointable and the
    // epoch-0 image always exists, so a failed job implies at least one
    // restart was started for it.
    if (job->failed()) {
      EXPECT_GT(ckpt.restarts_of(job->id()), 0)
          << job->name() << " was aborted without a recovery attempt";
    }
  }
  out.checkpoints = ckpt.stats().checkpoints_taken;
  out.pages_staged = ckpt.stats().pages_staged;
  out.jobs_recovered = scheduler.stats().jobs_recovered;
  out.restarts_failed = ckpt.stats().restarts_failed;
  out.nodes_failed = scheduler.stats().nodes_failed;
  // Every started restart resolved one way or the other (the quiesce checks
  // above rule out attempts still in flight).
  EXPECT_EQ(ckpt.stats().restarts_started,
            scheduler.stats().jobs_recovered + ckpt.stats().restarts_failed);

  // Conservation across restores: surviving nodes end with every frame free,
  // every swap slot returned (staged images included), and no live spaces.
  for (int n = 0; n < kNodes; ++n) {
    if (!cluster.node_alive(n)) continue;
    auto& vmm = cluster.node(n).vmm();
    EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames()) << "node " << n;
    EXPECT_EQ(cluster.node(n).swap().used_slots(), 0) << "node " << n;
    for (Pid pid : vmm.pids()) {
      EXPECT_FALSE(vmm.space(pid).alive()) << "node " << n << " pid " << pid;
    }
  }
  return out;
}

TEST(RecoverChaos, RandomFaultPlansNeverLoseJobsSilently) {
  int crashes_recovered = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RecoverChaosOutcome outcome = run_recover_chaos(seed);
    if (outcome.jobs_recovered > 0) ++crashes_recovered;
  }
  // Vacuity guard: some of the random plans must actually have exercised a
  // recovery (FaultPlan::random crashes a node in a sizeable fraction).
  EXPECT_GE(crashes_recovered, 1);
}

TEST(RecoverChaos, SameSeedReproducesTheRunBitForBit) {
  for (const std::uint64_t seed : {2u, 5u, 9u}) {
    const RecoverChaosOutcome first = run_recover_chaos(seed);
    const RecoverChaosOutcome second = run_recover_chaos(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

}  // namespace
}  // namespace apsim
