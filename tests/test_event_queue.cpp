// Unit tests for the discrete-event queue: ordering, stability,
// cancellation semantics, and handle lifecycle.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace apsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  (void)queue.schedule(30, [&] { order.push_back(3); });
  (void)queue.schedule(10, [&] { order.push_back(1); });
  (void)queue.schedule(20, [&] { order.push_back(2); });
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    (void)queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue queue;
  (void)queue.schedule(42, [] {});
  EXPECT_EQ(queue.next_time(), 42);
  auto popped = queue.pop();
  EXPECT_EQ(popped.time, 42);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  auto handle = queue.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  queue.cancel(handle);
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  auto handle = queue.schedule(10, [] {});
  queue.cancel(handle);
  queue.cancel(handle);  // no-op
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue queue;
  std::vector<int> order;
  (void)queue.schedule(10, [&] { order.push_back(1); });
  auto handle = queue.schedule(20, [&] { order.push_back(2); });
  (void)queue.schedule(30, [&] { order.push_back(3); });
  queue.cancel(handle);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue queue;
  auto handle = queue.schedule(10, [] {});
  (void)queue.pop();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, DefaultHandleIsNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  auto h1 = queue.schedule(1, [] {});
  (void)queue.schedule(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(h1);
  EXPECT_EQ(queue.size(), 1u);
  (void)queue.pop();
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue queue;
  auto h1 = queue.schedule(1, [] {});
  (void)queue.schedule(2, [] {});
  queue.cancel(h1);
  EXPECT_EQ(queue.next_time(), 2);
}

TEST(EventQueue, CancelAfterPopIsANoOp) {
  EventQueue queue;
  int runs = 0;
  auto handle = queue.schedule(10, [&] { ++runs; });
  auto popped = queue.pop();
  popped.fn();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(handle.pending());
  queue.cancel(handle);  // must not disturb the (empty) queue
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);

  // And must not cancel an unrelated event that reused the slot.
  bool survivor_ran = false;
  (void)queue.schedule(20, [&] { survivor_ran = true; });
  queue.cancel(handle);
  ASSERT_FALSE(queue.empty());
  queue.pop().fn();
  EXPECT_TRUE(survivor_ran);
}

TEST(EventQueue, CancelTwiceDecrementsSizeOnce) {
  EventQueue queue;
  auto doomed = queue.schedule(10, [] {});
  (void)queue.schedule(20, [] {});
  queue.cancel(doomed);
  EXPECT_EQ(queue.size(), 1u);
  queue.cancel(doomed);  // second cancel: no double-decrement, no UB
  queue.cancel(doomed);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.next_time(), 20);
}

TEST(EventQueue, PendingOnDestroyedQueueIsFalse) {
  EventHandle handle;
  {
    EventQueue queue;
    handle = queue.schedule(10, [] {});
    EXPECT_TRUE(handle.pending());
  }
  // The pool died with the queue; the handle must answer without touching
  // freed memory (ASan-verified in the sanitizer CI job).
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue queue;
  // Fill and drain so the slot pool has recycled entries, keeping handles to
  // every generation along the way.
  std::vector<EventHandle> stale;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      stale.push_back(queue.schedule(round * 100 + i, [] {}));
    }
    while (!queue.empty()) (void)queue.pop();
  }
  for (const auto& handle : stale) EXPECT_FALSE(handle.pending());

  // New events land on recycled slots with bumped generations: none of the
  // stale handles may cancel (or report pending for) the new occupants.
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    (void)queue.schedule(i, [&] { ++ran; });
  }
  for (const auto& handle : stale) {
    EXPECT_FALSE(handle.pending());
    queue.cancel(handle);
  }
  EXPECT_EQ(queue.size(), 10u);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(ran, 10);
}

TEST(EventQueue, HandleFromOneQueueCannotCancelAnother) {
  EventQueue a;
  EventQueue b;
  auto ha = a.schedule(1, [] {});
  (void)b.schedule(1, [] {});
  b.cancel(ha);  // foreign handle: no-op on b
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(ha.pending());
  a.cancel(ha);
  EXPECT_EQ(a.size(), 0u);
}

TEST(EventQueue, CancelFrontDuringSameTimeBatch) {
  // Cancel an event at the batch head's instant after the batch has been
  // drained internally: the tombstone must be shed, not dispatched.
  EventQueue queue;
  std::vector<int> order;
  EventHandle second;
  for (int i = 0; i < 4; ++i) {
    auto h = queue.schedule(5, [&order, i] { order.push_back(i); });
    if (i == 2) second = h;
  }
  queue.pop().fn();  // drains the same-time run into the batch buffer
  queue.cancel(second);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
}

TEST(EventQueue, SlotReuseKeepsFifoWithinInstant) {
  // Heavy recycle traffic must not perturb same-time FIFO order (seq is
  // global, slots are reused).
  EventQueue queue;
  std::vector<int> order;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 16; ++i) {
      (void)queue.schedule(7, [&order, i] { order.push_back(i); });
    }
    order.clear();
    while (!queue.empty()) queue.pop().fn();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  // Pseudo-random times, checking global sortedness of pop sequence.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    (void)queue.schedule(static_cast<SimTime>(state % 1000), [] {});
  }
  SimTime last = -1;
  while (!queue.empty()) {
    auto popped = queue.pop();
    EXPECT_GE(popped.time, last);
    last = popped.time;
  }
}

}  // namespace
}  // namespace apsim
