// Unit tests for the discrete-event queue: ordering, stability,
// cancellation semantics, and handle lifecycle.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace apsim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  (void)queue.schedule(30, [&] { order.push_back(3); });
  (void)queue.schedule(10, [&] { order.push_back(1); });
  (void)queue.schedule(20, [&] { order.push_back(2); });
  while (!queue.empty()) {
    auto [time, fn] = queue.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    (void)queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue queue;
  (void)queue.schedule(42, [] {});
  EXPECT_EQ(queue.next_time(), 42);
  auto popped = queue.pop();
  EXPECT_EQ(popped.time, 42);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  auto handle = queue.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  queue.cancel(handle);
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  auto handle = queue.schedule(10, [] {});
  queue.cancel(handle);
  queue.cancel(handle);  // no-op
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue queue;
  std::vector<int> order;
  (void)queue.schedule(10, [&] { order.push_back(1); });
  auto handle = queue.schedule(20, [&] { order.push_back(2); });
  (void)queue.schedule(30, [&] { order.push_back(3); });
  queue.cancel(handle);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, HandleNotPendingAfterPop) {
  EventQueue queue;
  auto handle = queue.schedule(10, [] {});
  (void)queue.pop();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, DefaultHandleIsNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  auto h1 = queue.schedule(1, [] {});
  (void)queue.schedule(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(h1);
  EXPECT_EQ(queue.size(), 1u);
  (void)queue.pop();
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, CancelledHeadSkippedByNextTime) {
  EventQueue queue;
  auto h1 = queue.schedule(1, [] {});
  (void)queue.schedule(2, [] {});
  queue.cancel(h1);
  EXPECT_EQ(queue.next_time(), 2);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  // Pseudo-random times, checking global sortedness of pop sequence.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    (void)queue.schedule(static_cast<SimTime>(state % 1000), [] {});
  }
  SimTime last = -1;
  while (!queue.empty()) {
    auto popped = queue.pop();
    EXPECT_GE(popped.time, last);
    last = popped.time;
  }
}

}  // namespace
}  // namespace apsim
