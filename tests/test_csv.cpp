// Unit tests for the CSV writer and outcome export.

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/csv.hpp"

namespace apsim {
namespace {

TEST(Csv, PlainFieldsUnquoted) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

/// Minimal RFC 4180 reader for round-trip checking: splits one CSV document
/// into rows of unescaped fields. Rows are terminated by a '\n' outside
/// quotes (the writer's convention); quoted fields may contain anything.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field += c;
    }
  }
  return rows;
}

TEST(Csv, RoundTripsHostileFields) {
  const std::vector<std::string> nasty = {
      "plain",
      "",
      "a,b,c",
      "\"fully quoted\"",
      "ends with quote\"",
      "\"starts with quote",
      "embedded \"\" doubled",
      "two\nlines",
      "carriage\rreturn",
      "crlf\r\npair",
      "mix,\"of\r\nevery\",thing\n",
      "   padded   ",
      "\"",
      "\"\"",
  };
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(nasty);
  csv.row(nasty);  // two records: the row terminator must survive too
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], nasty);
  EXPECT_EQ(rows[1], nasty);
}

TEST(Csv, EscapeQuotesBareCarriageReturn) {
  // A lone CR (no LF) must be quoted: readers treat it as a record break.
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::escape("trailing\r"), "\"trailing\r\"");
}

TEST(Csv, SwitchPhasesExport) {
  RunOutcome outcome;
  outcome.label = "LU.W, traced";
  outcome.policy = "so/ao/ai/bg";
  SwitchPhaseStat phase;
  phase.category = "switch";
  phase.name = "page_in";
  phase.count = 3;
  phase.total_s = 1.5;
  phase.mean_s = 0.5;
  outcome.switch_phases.push_back(phase);

  std::ostringstream os;
  write_switch_phases_csv(os, {outcome, RunOutcome{}});
  const auto rows = parse_csv(os.str());
  // Header + one row; the untraced outcome contributes nothing.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "label");
  EXPECT_EQ(rows[1][0], "LU.W, traced");
  EXPECT_EQ(rows[1][2], "switch");
  EXPECT_EQ(rows[1][3], "page_in");
  EXPECT_EQ(rows[1][4], "3");
}

TEST(Csv, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(Csv, OutcomesExportOneLinePerJob) {
  RunOutcome outcome;
  outcome.label = "LU, stressed";
  outcome.policy = "so/ao";
  outcome.makespan = 100 * kSecond;
  JobOutcome job;
  job.name = "LU#0";
  job.completion = 60 * kSecond;
  job.major_faults = 5;
  outcome.jobs.push_back(job);
  job.name = "LU#1";
  job.completion = 100 * kSecond;
  outcome.jobs.push_back(job);

  outcome.tier_pool_hits = 7;
  outcome.tier_pool_misses = 3;
  outcome.tier_writeback_pages = 2;

  std::ostringstream os;
  write_outcomes_csv(os, {outcome});
  const std::string text = os.str();
  // Header + 2 job rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("\"LU, stressed\""), std::string::npos);  // quoted
  EXPECT_NE(text.find("LU#0"), std::string::npos);
  EXPECT_NE(text.find("LU#1"), std::string::npos);
  EXPECT_NE(text.find("so/ao"), std::string::npos);
  // Compressed-tier counters ride along as run-level columns.
  EXPECT_NE(text.find("tier_pool_hits"), std::string::npos);
  EXPECT_NE(text.find("tier_writeback_pages"), std::string::npos);
}

}  // namespace
}  // namespace apsim
