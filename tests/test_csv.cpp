// Unit tests for the CSV writer and outcome export.

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/csv.hpp"

namespace apsim {
namespace {

TEST(Csv, PlainFieldsUnquoted) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(Csv, OutcomesExportOneLinePerJob) {
  RunOutcome outcome;
  outcome.label = "LU, stressed";
  outcome.policy = "so/ao";
  outcome.makespan = 100 * kSecond;
  JobOutcome job;
  job.name = "LU#0";
  job.completion = 60 * kSecond;
  job.major_faults = 5;
  outcome.jobs.push_back(job);
  job.name = "LU#1";
  job.completion = 100 * kSecond;
  outcome.jobs.push_back(job);

  outcome.tier_pool_hits = 7;
  outcome.tier_pool_misses = 3;
  outcome.tier_writeback_pages = 2;

  std::ostringstream os;
  write_outcomes_csv(os, {outcome});
  const std::string text = os.str();
  // Header + 2 job rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("\"LU, stressed\""), std::string::npos);  // quoted
  EXPECT_NE(text.find("LU#0"), std::string::npos);
  EXPECT_NE(text.find("LU#1"), std::string::npos);
  EXPECT_NE(text.find("so/ao"), std::string::npos);
  // Compressed-tier counters ride along as run-level columns.
  EXPECT_NE(text.find("tier_pool_hits"), std::string::npos);
  EXPECT_NE(text.find("tier_writeback_pages"), std::string::npos);
}

}  // namespace
}  // namespace apsim
