// Unit tests for node/cluster assembly: component wiring, wired-down
// memory, swap sizing, and multi-node independence.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace apsim {
namespace {

NodeParams params_with(double wired_mb) {
  NodeParams n;
  n.vmm.total_frames = mb_to_pages(64.0);
  n.disk.num_blocks = mb_to_pages(256.0);
  n.wired_mb = wired_mb;
  return n;
}

TEST(Node, ComponentsWiredTogether) {
  Simulator sim;
  Node node(sim, params_with(0.0), 3);
  EXPECT_EQ(node.index(), 3);
  EXPECT_EQ(node.vmm().frames().total_frames(), mb_to_pages(64.0));
  EXPECT_EQ(node.swap().num_slots(), mb_to_pages(256.0));
  EXPECT_EQ(&node.cpu().vmm(), &node.vmm());
  EXPECT_EQ(&node.swap().disk(), &node.disk());
}

TEST(Node, WiredMemoryReducesUsableFrames) {
  Simulator sim;
  Node node(sim, params_with(24.0), 0);
  EXPECT_EQ(node.vmm().frames().wired_frames(), mb_to_pages(24.0));
  EXPECT_EQ(node.vmm().frames().usable_frames(), mb_to_pages(40.0));
}

TEST(Node, SwapSlotsDefaultToWholeDisk) {
  Simulator sim;
  NodeParams params = params_with(0.0);
  params.swap_slots = 0;  // default: whole disk
  Node whole(sim, params, 0);
  EXPECT_EQ(whole.swap().num_slots(), params.disk.num_blocks);
  params.swap_slots = 1024;
  Node partial(sim, params, 1);
  EXPECT_EQ(partial.swap().num_slots(), 1024);
}

TEST(Cluster, NodesShareOneSimulator) {
  Cluster cluster(4, params_with(0.0));
  EXPECT_EQ(cluster.size(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).index(), i);
  }
  EXPECT_EQ(cluster.network().num_nodes(), 4);
}

TEST(Cluster, NodesHaveIndependentMemory) {
  Cluster cluster(2, params_with(0.0));
  const Pid pid = cluster.node(0).vmm().create_process(16);
  bool done = false;
  cluster.node(0).vmm().fault(pid, 0, true, [&] { done = true; });
  cluster.sim().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.node(0).vmm().frames().used_frames(), 1);
  EXPECT_EQ(cluster.node(1).vmm().frames().used_frames(), 0);
}

TEST(Cluster, DisksOperateConcurrently) {
  Cluster cluster(2, params_with(0.0));
  SimTime done0 = -1;
  SimTime done1 = -1;
  cluster.node(0).disk().submit({.start = 0, .nblocks = 256, .write = true,
                                 .priority = IoPriority::kForeground,
                                 .on_complete = [&](IoResult) {
                                   done0 = cluster.sim().now();
                                 }});
  cluster.node(1).disk().submit({.start = 0, .nblocks = 256, .write = true,
                                 .priority = IoPriority::kForeground,
                                 .on_complete = [&](IoResult) {
                                   done1 = cluster.sim().now();
                                 }});
  cluster.sim().run();
  // Same-sized transfers on separate spindles complete at the same time.
  EXPECT_EQ(done0, done1);
  EXPECT_GT(done0, 0);
}

}  // namespace
}  // namespace apsim
