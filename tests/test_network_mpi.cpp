// Unit tests for the network model (latency, bandwidth, link serialization)
// and the mini-MPI communicator (barrier matching, exchange, allreduce,
// gang-skew behaviour).

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "net/mpi.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

TEST(Network, DeliveryIncludesLatencyAndTransfer) {
  Simulator sim;
  Network net(sim, 2);
  SimTime delivered = -1;
  net.send(0, 1, 125000, [&] { delivered = sim.now(); });  // ~10 ms at 100 Mbps
  sim.run();
  const auto& p = net.params();
  const SimTime expected = p.per_message_overhead + net.transfer_time(125000) +
                           p.latency + p.per_message_overhead;
  EXPECT_NEAR(static_cast<double>(delivered), static_cast<double>(expected),
              static_cast<double>(kMillisecond));
  EXPECT_GE(delivered, 10 * kMillisecond);
}

TEST(Network, SenderLinkSerializesBackToBackMessages) {
  Simulator sim;
  Network net(sim, 3);
  SimTime first = -1, second = -1;
  net.send(0, 1, 1'250'000, [&] { first = sim.now(); });   // ~100 ms
  net.send(0, 2, 1'250'000, [&] { second = sim.now(); });  // queued behind
  sim.run();
  EXPECT_GT(second, first + 50 * kMillisecond);
}

TEST(Network, DistinctSendersProceedInParallel) {
  Simulator sim;
  Network net(sim, 4);
  SimTime a = -1, b = -1;
  net.send(0, 2, 1'250'000, [&] { a = sim.now(); });
  net.send(1, 3, 1'250'000, [&] { b = sim.now(); });
  sim.run();
  EXPECT_LT(std::abs(a - b), kMillisecond);
}

TEST(Network, SelfSendIsCheap) {
  Simulator sim;
  Network net(sim, 2);
  SimTime t = -1;
  net.send(0, 0, 1 << 20, [&] { t = sim.now(); });
  sim.run();
  EXPECT_LT(t, kMillisecond);
}

TEST(Network, StatsCountTraffic) {
  Simulator sim;
  Network net(sim, 2);
  net.send(0, 1, 100, [] {});
  net.charge(1, 0, 200);
  sim.run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 300u);
}

struct MpiFixture : ::testing::Test {
  static constexpr int kRanks = 4;

  MpiFixture() {
    NodeParams node;
    node.vmm.total_frames = 4096;
    node.disk.num_blocks = 1 << 16;
    cluster = std::make_unique<Cluster>(kRanks, node);
    comm = std::make_unique<MpiComm>(cluster->sim(), cluster->network(),
                                     kRanks);
  }

  /// Create one process per node running `iters` iterations of
  /// barrier-only cycles.
  void make_ranks(std::int64_t iters, CommOp::Type type = CommOp::Type::kBarrier,
                  std::int64_t bytes = 0) {
    for (int r = 0; r < kRanks; ++r) {
      auto& node = cluster->node(r);
      const Pid pid = node.vmm().create_process(4);
      auto program = std::make_unique<IterativeProgram>(
          std::vector<Op>{},
          std::vector<Op>{Op::comm_op(CommOp{type, bytes})}, iters);
      procs.push_back(std::make_unique<Process>("r" + std::to_string(r), pid,
                                                std::move(program)));
      node.cpu().attach(*procs.back());
      comm->bind(r, *procs.back(), r);
      comm->install_exclusive(node.cpu());
    }
  }

  void start_all() {
    for (int r = 0; r < kRanks; ++r) {
      cluster->node(r).cpu().cont_process(*procs[static_cast<std::size_t>(r)]);
    }
  }

  [[nodiscard]] bool all_finished() const {
    for (const auto& p : procs) {
      if (!p->finished()) return false;
    }
    return true;
  }

  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<MpiComm> comm;
  std::vector<std::unique_ptr<Process>> procs;
};

TEST_F(MpiFixture, BarrierCompletesForAllRanks) {
  make_ranks(5);
  start_all();
  cluster->sim().run();
  EXPECT_TRUE(all_finished());
  EXPECT_EQ(comm->stats().barriers, 5u);
}

TEST_F(MpiFixture, BarrierWaitsForLaggard) {
  make_ranks(1);
  // Start all but rank 3; release the laggard 10 virtual seconds in.
  for (int r = 0; r < 3; ++r) {
    cluster->node(r).cpu().cont_process(*procs[static_cast<std::size_t>(r)]);
  }
  (void)cluster->sim().at(10 * kSecond, [&] {
    EXPECT_FALSE(procs[0]->finished());
    EXPECT_EQ(procs[0]->state(), ProcState::kBlockedComm);
    cluster->node(3).cpu().cont_process(*procs[3]);
  });
  cluster->sim().run();
  EXPECT_TRUE(all_finished());
  // Ranks 0-2 spent ~10 s waiting in the barrier (gang skew).
  EXPECT_GT(procs[0]->stats().comm_wait, 9 * kSecond);
}

TEST_F(MpiFixture, ExchangeMovesBytes) {
  make_ranks(3, CommOp::Type::kExchange, 64 * 1024);
  start_all();
  cluster->sim().run();
  EXPECT_TRUE(all_finished());
  EXPECT_EQ(comm->stats().exchanges, 3u);
  // 4 ranks x 2 neighbours x 3 iterations messages.
  EXPECT_EQ(cluster->network().stats().messages, 24u);
  EXPECT_EQ(cluster->network().stats().bytes, 24u * 64 * 1024);
}

TEST_F(MpiFixture, AllreduceCostsLogRounds) {
  make_ranks(1, CommOp::Type::kAllreduce, 1024);
  start_all();
  cluster->sim().run();
  EXPECT_TRUE(all_finished());
  EXPECT_EQ(comm->stats().allreduces, 1u);
  // Completion takes at least 2 rounds of latency (log2(4) = 2).
  EXPECT_GE(cluster->sim().now(), 2 * cluster->network().params().latency);
}

TEST(MpiSingleRank, CollectivesDegenerate) {
  NodeParams node;
  node.vmm.total_frames = 1024;
  node.disk.num_blocks = 1 << 14;
  Cluster cluster(1, node);
  MpiComm comm(cluster.sim(), cluster.network(), 1);
  const Pid pid = cluster.node(0).vmm().create_process(4);
  auto program = std::make_unique<IterativeProgram>(
      std::vector<Op>{},
      std::vector<Op>{Op::comm_op(CommOp{CommOp::Type::kExchange, 4096}),
                      Op::comm_op(CommOp{CommOp::Type::kBarrier, 0})},
      2);
  Process proc("solo", pid, std::move(program));
  cluster.node(0).cpu().attach(proc);
  comm.bind(0, proc, 0);
  comm.install_exclusive(cluster.node(0).cpu());
  cluster.node(0).cpu().cont_process(proc);
  cluster.sim().run();
  EXPECT_TRUE(proc.finished());
}

}  // namespace
}  // namespace apsim
