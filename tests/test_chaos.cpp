// Chaos property test: randomized fault plans (FaultPlan::random) against a
// small gang-scheduled cluster. For each seed the run must quiesce, every job
// must reach a terminal state, surviving nodes must end with all memory and
// swap returned, any failure must be diagnosable from the statistics, and the
// whole run must be bit-reproducible from its seed.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "gang/gang_scheduler.hpp"
#include "tier/tier_manager.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

constexpr int kNodes = 2;
constexpr SimTime kFaultHorizon = 60 * kSecond;  // fault windows live in here

NodeParams chaos_node_params() {
  NodeParams n;
  n.vmm.total_frames = 512;
  n.vmm.freepages_min = 8;
  n.vmm.freepages_low = 12;
  n.vmm.freepages_high = 16;
  n.disk.num_blocks = 1 << 16;
  return n;
}

/// Everything observable about one chaos run, for determinism comparison.
struct ChaosOutcome {
  bool finished = false;
  std::vector<SimTime> finish_times;
  std::vector<bool> failed;
  std::uint64_t pages_swapped_in = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t tier_pool_hits = 0;
  std::uint64_t tier_stores_faulted = 0;
  std::uint64_t tier_writeback_pages = 0;
  int jobs_failed = 0;
  int nodes_failed = 0;

  friend bool operator==(const ChaosOutcome&, const ChaosOutcome&) = default;
};

/// \p job_iterations controls how long each job runs: at the default 300
/// (1.8 s of compute vs a 2 s quantum) jobs mostly complete within their
/// first quantum, so memory pressure comes from faults stretching them;
/// larger values make every job span many quanta so all three address
/// spaces compete for frames and paging is guaranteed.
ChaosOutcome run_chaos(std::uint64_t seed, const NodeParams& node_params,
                       const FaultPlan& plan, std::int64_t job_iterations) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.to_string());

  Cluster cluster(kNodes, node_params, NetParams{}, seed, plan);
  GangParams params;
  params.quantum = 2 * kSecond;
  if (plan.disturbs_control_plane()) {
    params.switch_watchdog = 50 * kMillisecond;
  }
  GangScheduler scheduler(cluster, params);

  // Three jobs under real memory pressure: two full-width (900 pages on
  // node 0, 600 on node 1, against 512 frames) plus one single-node job that
  // can survive a crash of node 1.
  std::vector<std::unique_ptr<Process>> procs;
  auto add_job = [&](const std::string& name, const std::vector<int>& nodes,
                     std::int64_t pages, std::int64_t iterations) {
    Job& job = scheduler.create_job(name);
    for (int n : nodes) {
      SweepOptions options;
      options.pages = pages;
      options.iterations = iterations;
      options.compute_per_touch = 20 * kMicrosecond;
      const Pid pid = cluster.node(n).vmm().create_process(pages);
      procs.push_back(std::make_unique<Process>(
          name + ":" + std::to_string(n), pid, make_sweep_program(options)));
      cluster.node(n).cpu().attach(*procs.back());
      job.add_process(n, *procs.back());
    }
  };
  add_job("wide-a", {0, 1}, 300, job_iterations);
  add_job("wide-b", {0, 1}, 300, job_iterations);
  add_job("solo", {0}, 300, job_iterations);

  scheduler.start();
  ChaosOutcome out;
  out.finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute);

  // Property 1: the run quiesces. Every job reached a terminal state well
  // before the horizon, and after draining the remaining events (planned
  // crashes, in-flight I/O reaps) the event queue is empty — nothing keeps
  // rescheduling itself.
  EXPECT_TRUE(out.finished) << "run did not terminate";
  (void)cluster.sim().run_until([] { return false; },
                                cluster.sim().now() + 5 * kMinute);
  EXPECT_EQ(cluster.sim().pending_events(), 0u) << "event queue did not drain";

  // Property 2: every job is terminal, and failures only happen for a
  // diagnosable reason (a crashed node or an injected I/O error).
  for (const auto& job : scheduler.jobs()) {
    EXPECT_TRUE(job->done()) << job->name();
    out.finish_times.push_back(job->finished_at());
    out.failed.push_back(job->failed());
  }
  out.jobs_failed = scheduler.stats().jobs_failed;
  out.nodes_failed = scheduler.stats().nodes_failed;
  out.retransmits = scheduler.stats().signal_retransmits;

  std::uint64_t unrecoverable = 0;
  for (int n = 0; n < kNodes; ++n) {
    const auto& vstats = cluster.node(n).vmm().stats();
    unrecoverable += vstats.pages_unrecoverable + vstats.out_of_swap_faults;
    out.io_errors += cluster.node(n).disk().stats().io_errors;
    out.io_retries += vstats.io_retries;
    if (const TierManager* tier = cluster.node(n).tier()) {
      out.tier_pool_hits += tier->stats().pool_hits;
      out.tier_stores_faulted += tier->stats().stores_faulted;
      out.tier_writeback_pages += tier->stats().writeback_pages;
    }
  }
  if (out.jobs_failed > 0) {
    EXPECT_TRUE(out.nodes_failed > 0 || unrecoverable > 0)
        << "jobs failed without a recorded cause";
  }

  // Property 3: a crashed node only ever takes down jobs placed on it; the
  // single-node job on node 0 survives any crash of node 1.
  if (out.nodes_failed > 0) {
    EXPECT_EQ(out.nodes_failed, 1);  // FaultPlan::random crashes at most one
    for (const auto& job : scheduler.jobs()) {
      bool on_dead_node = false;
      for (int node : job->nodes()) {
        if (!cluster.node_alive(node)) on_dead_node = true;
      }
      if (job->failed() && unrecoverable == 0) {
        EXPECT_TRUE(on_dead_node)
            << job->name() << " failed off the crashed node";
      }
    }
  }

  // Property 4: surviving nodes end the run with every frame free, every
  // swap slot returned, and no resident pages — no leaks through any
  // error/retry/reap path.
  for (int n = 0; n < kNodes; ++n) {
    if (!cluster.node_alive(n)) continue;
    auto& vmm = cluster.node(n).vmm();
    EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames()) << "node " << n;
    EXPECT_EQ(cluster.node(n).swap().used_slots(), 0) << "node " << n;
    if (const TierManager* tier = cluster.node(n).tier()) {
      // Every swap slot was returned, so the release hook must have drained
      // the compressed pool with them.
      EXPECT_EQ(tier->pool().entry_count(), 0) << "node " << n;
      EXPECT_EQ(tier->pool().bytes_used(), 0) << "node " << n;
    }
    for (Pid pid : vmm.pids()) {
      EXPECT_FALSE(vmm.space(pid).alive()) << "node " << n << " pid " << pid;
      EXPECT_EQ(vmm.space(pid).resident_pages(), 0)
          << "node " << n << " pid " << pid;
    }
  }

  for (const auto& job : scheduler.jobs()) {
    out.pages_swapped_in += [&] {
      std::uint64_t total = 0;
      for (const auto& placement : job->processes()) {
        total += cluster.node(placement.node)
                     .vmm()
                     .space(placement.process->pid())
                     .stats()
                     .pages_swapped_in;
      }
      return total;
    }();
  }
  return out;
}

ChaosOutcome run_chaos(std::uint64_t seed) {
  return run_chaos(seed, chaos_node_params(),
                   FaultPlan::random(seed, kNodes, kFaultHorizon), 300);
}

NodeParams tiered_chaos_node_params() {
  NodeParams n = chaos_node_params();
  // 0.5 MB pool = 128 of the 512 frames wired down for compressed storage,
  // which also tightens memory pressure on the jobs.
  n.tier.pool_mb = 0.5;
  n.tier.ratio_model = TierRatioModel::kMixed;
  return n;
}

/// Tier chaos plan: half of all pool admissions fail for the first minute,
/// on top of a burst of transient disk errors — so faulted stores, disk
/// fallbacks, retries and writeback all run concurrently.
FaultPlan tier_chaos_plan() {
  FaultPlan plan;
  plan.add(FaultSpec::parse("tier_fault start_s=0 end_s=60 p=0.5"));
  plan.add(FaultSpec::parse("disk_transient start_s=5 end_s=40 p=0.05"));
  return plan;
}

TEST(Chaos, RandomFaultPlansAlwaysQuiesceWithInvariantsIntact) {
  int with_faults_exercised = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosOutcome outcome = run_chaos(seed);
    if (outcome.io_errors > 0 || outcome.retransmits > 0 ||
        outcome.nodes_failed > 0) {
      ++with_faults_exercised;
    }
  }
  // The property is vacuous if no plan ever perturbed a run; with 20 random
  // plans a healthy majority must have actually injected something.
  EXPECT_GE(with_faults_exercised, 5);
}

TEST(Chaos, SameSeedReproducesTheRunBitForBit) {
  for (std::uint64_t seed : {3u, 7u, 11u, 17u}) {
    const ChaosOutcome first = run_chaos(seed);
    const ChaosOutcome second = run_chaos(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(Chaos, TierFaultsQuiesceWithPoolDrained) {
  // Same quiesce/terminal/no-leak properties as the random plans, but with
  // the compressed tier in the paging path and its admissions being failed
  // half the time. run_chaos itself asserts the pool ends empty on every
  // surviving node.
  std::uint64_t hits = 0, faulted = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ChaosOutcome outcome =
        run_chaos(seed, tiered_chaos_node_params(), tier_chaos_plan(), 1500);
    hits += outcome.tier_pool_hits;
    faulted += outcome.tier_stores_faulted;
  }
  // The property is vacuous unless the tier actually served swap-ins and the
  // injector actually rejected stores.
  EXPECT_GT(hits, 0u);
  EXPECT_GT(faulted, 0u);
}

TEST(Chaos, TieredRunsWithFaultsReplayBitForBit) {
  for (std::uint64_t seed : {2u, 9u}) {
    const ChaosOutcome first =
        run_chaos(seed, tiered_chaos_node_params(), tier_chaos_plan(), 1500);
    const ChaosOutcome second =
        run_chaos(seed, tiered_chaos_node_params(), tier_chaos_plan(), 1500);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

}  // namespace
}  // namespace apsim
