// Unit tests for the scenario-file parser.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace apsim {
namespace {

TEST(Scenario, DefaultsPropagateToRuns) {
  const auto configs = parse_scenario(R"(
[defaults]
app = MG
usable_mb = 600

[run]
label = first

[run]
label = second
app = IS
)");
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].label, "first");
  EXPECT_EQ(configs[0].app, NpbApp::kMG);
  EXPECT_DOUBLE_EQ(configs[0].usable_memory_mb, 600.0);
  EXPECT_EQ(configs[1].app, NpbApp::kIS);  // overridden
  EXPECT_DOUBLE_EQ(configs[1].usable_memory_mb, 600.0);
}

TEST(Scenario, AllKeysParse) {
  const auto configs = parse_scenario(R"(
[run]
app = CG
class = A
nodes = 4
instances = 3
memory_mb = 512
usable_mb = 256
policy = so/ai
quantum_s = 120
quantum_override_s = 240
page_cluster = 32
bg_start_frac = 0.8
pass_ws_hint = true
seed = 99
iterations_scale = 0.5
capture_traces = yes
batch = false
label = everything
horizon_s = 1000
tier_mb = 32
tier_ratio_model = text
tier_writeback = false
io_retry_limit = 6
io_retry_base_ms = 10
io_retry_cap_ms = 160
stalled_retry_limit = 50
write_failure_streak = 5
)");
  ASSERT_EQ(configs.size(), 1u);
  const auto& c = configs[0];
  EXPECT_EQ(c.app, NpbApp::kCG);
  EXPECT_EQ(c.cls, NpbClass::kA);
  EXPECT_EQ(c.nodes, 4);
  EXPECT_EQ(c.instances, 3);
  EXPECT_DOUBLE_EQ(c.node_memory_mb, 512.0);
  EXPECT_DOUBLE_EQ(c.usable_memory_mb, 256.0);
  EXPECT_EQ(c.policy, PolicySet::parse("so/ai"));
  EXPECT_EQ(c.quantum, 120 * kSecond);
  ASSERT_TRUE(c.quantum_override.has_value());
  EXPECT_EQ(*c.quantum_override, 240 * kSecond);
  EXPECT_EQ(c.page_cluster, 32);
  EXPECT_DOUBLE_EQ(c.bg_start_frac, 0.8);
  EXPECT_TRUE(c.pass_ws_hint);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_DOUBLE_EQ(c.iterations_scale, 0.5);
  EXPECT_TRUE(c.capture_traces);
  EXPECT_FALSE(c.batch_mode);
  EXPECT_EQ(c.label, "everything");
  EXPECT_EQ(c.horizon, 1000 * kSecond);
  EXPECT_DOUBLE_EQ(c.tier_mb, 32.0);
  EXPECT_EQ(c.tier_ratio_model, TierRatioModel::kText);
  EXPECT_FALSE(c.tier_writeback);
  EXPECT_EQ(c.io_retry_limit, 6);
  EXPECT_EQ(c.io_retry_base, 10 * kMillisecond);
  EXPECT_EQ(c.io_retry_cap, 160 * kMillisecond);
  EXPECT_EQ(c.stalled_fault_retry_limit, 50);
  EXPECT_EQ(c.write_failure_streak_limit, 5);
}

TEST(Scenario, RejectsUnknownTierRatioModel) {
  EXPECT_THROW((void)parse_scenario("[run]\ntier_ratio_model = brotli\n"),
               std::invalid_argument);
}

TEST(Scenario, CommentsAndBlanksIgnored) {
  const auto configs = parse_scenario(R"(
# a comment
[run]
# another
label = x

)");
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].label, "x");
}

TEST(Scenario, EmptyInputYieldsNoRuns) {
  EXPECT_TRUE(parse_scenario("").empty());
  EXPECT_TRUE(parse_scenario("# only comments\n").empty());
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    (void)parse_scenario("[run]\nnodes = many\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Scenario, RejectsUnknownKey) {
  EXPECT_THROW((void)parse_scenario("[run]\nbogus = 1\n"),
               std::invalid_argument);
}

TEST(Scenario, RejectsKeyOutsideSection) {
  EXPECT_THROW((void)parse_scenario("app = LU\n"), std::invalid_argument);
}

TEST(Scenario, RejectsUnknownSection) {
  EXPECT_THROW((void)parse_scenario("[wat]\n"), std::invalid_argument);
}

TEST(Scenario, RejectsDefaultsAfterRun) {
  EXPECT_THROW((void)parse_scenario("[run]\nlabel=a\n[defaults]\napp=LU\n"),
               std::invalid_argument);
}

TEST(Scenario, RejectsBadBooleanAndNumber) {
  EXPECT_THROW((void)parse_scenario("[run]\nbatch = perhaps\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("[run]\nseed = 1.5\n"),
               std::invalid_argument);
}

// Regression: number parsing is strict. "5x" is not 5, and the textual
// non-finites ("inf", "nan") are not valid values for any knob.

TEST(Scenario, RejectsTrailingJunkOnNumbers) {
  EXPECT_THROW((void)parse_scenario("[run]\nmemory_mb = 512x\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("[run]\nquantum_s = 120 s\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("[run]\nbg_start_frac = 0.8.1\n"),
               std::invalid_argument);
}

TEST(Scenario, RejectsNonFiniteNumbers) {
  for (const char* bad : {"inf", "-inf", "nan", "Infinity", "NAN"}) {
    EXPECT_THROW((void)parse_scenario(std::string("[run]\nmemory_mb = ") +
                                      bad + "\n"),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Scenario, RejectsEmptyNumber) {
  EXPECT_THROW((void)parse_scenario("[run]\nmemory_mb =\n"),
               std::invalid_argument);
}

TEST(Scenario, BadNumberMessageNamesKeyAndValue) {
  try {
    (void)parse_scenario("[run]\nusable_mb = 5x\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad number"), std::string::npos) << what;
    EXPECT_NE(what.find("usable_mb"), std::string::npos) << what;
    EXPECT_NE(what.find("5x"), std::string::npos) << what;
  }
}

TEST(Scenario, StrictNumbersStillAcceptValidForms) {
  const auto configs = parse_scenario(R"(
[run]
memory_mb = 512.25
usable_mb = 4e2
bg_start_frac = -0.5
iterations_scale = .75
)");
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_DOUBLE_EQ(configs[0].node_memory_mb, 512.25);
  EXPECT_DOUBLE_EQ(configs[0].usable_memory_mb, 400.0);
  EXPECT_DOUBLE_EQ(configs[0].bg_start_frac, -0.5);
  EXPECT_DOUBLE_EQ(configs[0].iterations_scale, 0.75);
}

TEST(Scenario, ApplyKeyDirect) {
  ExperimentConfig config;
  apply_scenario_key(config, "policy", "so");
  EXPECT_TRUE(config.policy.selective_out);
  EXPECT_THROW(apply_scenario_key(config, "nope", "1"), std::invalid_argument);
}

}  // namespace
}  // namespace apsim
