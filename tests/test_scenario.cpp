// Unit tests for the scenario-file parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gang/policy_registry.hpp"
#include "harness/scenario.hpp"
#include "sim/rng.hpp"

namespace apsim {
namespace {

TEST(Scenario, DefaultsPropagateToRuns) {
  const auto configs = parse_scenario(R"(
[defaults]
app = MG
usable_mb = 600

[run]
label = first

[run]
label = second
app = IS
)");
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].label, "first");
  EXPECT_EQ(configs[0].app, NpbApp::kMG);
  EXPECT_DOUBLE_EQ(configs[0].usable_memory_mb, 600.0);
  EXPECT_EQ(configs[1].app, NpbApp::kIS);  // overridden
  EXPECT_DOUBLE_EQ(configs[1].usable_memory_mb, 600.0);
}

TEST(Scenario, AllKeysParse) {
  const auto configs = parse_scenario(R"(
[run]
app = CG
class = A
nodes = 4
instances = 3
memory_mb = 512
usable_mb = 256
policy = so/ai
quantum_s = 120
quantum_override_s = 240
page_cluster = 32
bg_start_frac = 0.8
pass_ws_hint = true
seed = 99
iterations_scale = 0.5
capture_traces = yes
batch = false
label = everything
horizon_s = 1000
tier_mb = 32
tier_ratio_model = text
tier_writeback = false
io_retry_limit = 6
io_retry_base_ms = 10
io_retry_cap_ms = 160
stalled_retry_limit = 50
write_failure_streak = 5
)");
  ASSERT_EQ(configs.size(), 1u);
  const auto& c = configs[0];
  EXPECT_EQ(c.app, NpbApp::kCG);
  EXPECT_EQ(c.cls, NpbClass::kA);
  EXPECT_EQ(c.nodes, 4);
  EXPECT_EQ(c.instances, 3);
  EXPECT_DOUBLE_EQ(c.node_memory_mb, 512.0);
  EXPECT_DOUBLE_EQ(c.usable_memory_mb, 256.0);
  EXPECT_EQ(c.policy, PolicySet::parse("so/ai"));
  EXPECT_EQ(c.quantum, 120 * kSecond);
  ASSERT_TRUE(c.quantum_override.has_value());
  EXPECT_EQ(*c.quantum_override, 240 * kSecond);
  EXPECT_EQ(c.page_cluster, 32);
  EXPECT_DOUBLE_EQ(c.bg_start_frac, 0.8);
  EXPECT_TRUE(c.pass_ws_hint);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_DOUBLE_EQ(c.iterations_scale, 0.5);
  EXPECT_TRUE(c.capture_traces);
  EXPECT_FALSE(c.batch_mode);
  EXPECT_EQ(c.label, "everything");
  EXPECT_EQ(c.horizon, 1000 * kSecond);
  EXPECT_DOUBLE_EQ(c.tier_mb, 32.0);
  EXPECT_EQ(c.tier_ratio_model, TierRatioModel::kText);
  EXPECT_FALSE(c.tier_writeback);
  EXPECT_EQ(c.io_retry_limit, 6);
  EXPECT_EQ(c.io_retry_base, 10 * kMillisecond);
  EXPECT_EQ(c.io_retry_cap, 160 * kMillisecond);
  EXPECT_EQ(c.stalled_fault_retry_limit, 50);
  EXPECT_EQ(c.write_failure_streak_limit, 5);
}

TEST(Scenario, RejectsUnknownTierRatioModel) {
  EXPECT_THROW((void)parse_scenario("[run]\ntier_ratio_model = brotli\n"),
               std::invalid_argument);
}

TEST(Scenario, CommentsAndBlanksIgnored) {
  const auto configs = parse_scenario(R"(
# a comment
[run]
# another
label = x

)");
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].label, "x");
}

TEST(Scenario, EmptyInputYieldsNoRuns) {
  EXPECT_TRUE(parse_scenario("").empty());
  EXPECT_TRUE(parse_scenario("# only comments\n").empty());
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    (void)parse_scenario("[run]\nnodes = many\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Scenario, RejectsUnknownKey) {
  EXPECT_THROW((void)parse_scenario("[run]\nbogus = 1\n"),
               std::invalid_argument);
}

TEST(Scenario, RejectsKeyOutsideSection) {
  EXPECT_THROW((void)parse_scenario("app = LU\n"), std::invalid_argument);
}

TEST(Scenario, RejectsUnknownSection) {
  EXPECT_THROW((void)parse_scenario("[wat]\n"), std::invalid_argument);
}

TEST(Scenario, RejectsDefaultsAfterRun) {
  EXPECT_THROW((void)parse_scenario("[run]\nlabel=a\n[defaults]\napp=LU\n"),
               std::invalid_argument);
}

TEST(Scenario, RejectsBadBooleanAndNumber) {
  EXPECT_THROW((void)parse_scenario("[run]\nbatch = perhaps\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("[run]\nseed = 1.5\n"),
               std::invalid_argument);
}

// Regression: number parsing is strict. "5x" is not 5, and the textual
// non-finites ("inf", "nan") are not valid values for any knob.

TEST(Scenario, RejectsTrailingJunkOnNumbers) {
  EXPECT_THROW((void)parse_scenario("[run]\nmemory_mb = 512x\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("[run]\nquantum_s = 120 s\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("[run]\nbg_start_frac = 0.8.1\n"),
               std::invalid_argument);
}

TEST(Scenario, RejectsNonFiniteNumbers) {
  for (const char* bad : {"inf", "-inf", "nan", "Infinity", "NAN"}) {
    EXPECT_THROW((void)parse_scenario(std::string("[run]\nmemory_mb = ") +
                                      bad + "\n"),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Scenario, RejectsEmptyNumber) {
  EXPECT_THROW((void)parse_scenario("[run]\nmemory_mb =\n"),
               std::invalid_argument);
}

TEST(Scenario, BadNumberMessageNamesKeyAndValue) {
  try {
    (void)parse_scenario("[run]\nusable_mb = 5x\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad number"), std::string::npos) << what;
    EXPECT_NE(what.find("usable_mb"), std::string::npos) << what;
    EXPECT_NE(what.find("5x"), std::string::npos) << what;
  }
}

TEST(Scenario, StrictNumbersStillAcceptValidForms) {
  const auto configs = parse_scenario(R"(
[run]
memory_mb = 512.25
usable_mb = 4e2
bg_start_frac = -0.5
iterations_scale = .75
)");
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_DOUBLE_EQ(configs[0].node_memory_mb, 512.25);
  EXPECT_DOUBLE_EQ(configs[0].usable_memory_mb, 400.0);
  EXPECT_DOUBLE_EQ(configs[0].bg_start_frac, -0.5);
  EXPECT_DOUBLE_EQ(configs[0].iterations_scale, 0.75);
}

TEST(Scenario, ApplyKeyDirect) {
  ExperimentConfig config;
  apply_scenario_key(config, "policy", "so");
  EXPECT_TRUE(config.policy.selective_out);
  EXPECT_THROW(apply_scenario_key(config, "nope", "1"), std::invalid_argument);
}

TEST(Scenario, OpenArrivalKeysParse) {
  const auto configs = parse_scenario(R"(
[run]
sched_policy = backfill
dfrs_mem_frac = 0.7
dfrs_max_share = 3
auto_migrate = true
arrival = diurnal
arrival_mean_s = 2.5
diurnal_period_s = 120
diurnal_low_frac = 0.3
tenants = 4
straggler_fraction = 0.1
straggler_slowdown = 6
deadline_slack = 2
job_width_max = 2
job_pages_min = 100
job_pages_max = 900
job_iterations_min = 3
job_iterations_max = 9
)");
  ASSERT_EQ(configs.size(), 1u);
  const auto& c = configs[0];
  EXPECT_EQ(c.sched_policy, "backfill");
  EXPECT_DOUBLE_EQ(c.dfrs_mem_frac, 0.7);
  EXPECT_EQ(c.dfrs_max_share, 3);
  EXPECT_TRUE(c.auto_migrate);
  EXPECT_EQ(c.arrival_process, "diurnal");
  EXPECT_DOUBLE_EQ(c.arrival_mean_s, 2.5);
  EXPECT_DOUBLE_EQ(c.diurnal_period_s, 120.0);
  EXPECT_DOUBLE_EQ(c.diurnal_low_frac, 0.3);
  EXPECT_EQ(c.num_tenants, 4);
  EXPECT_DOUBLE_EQ(c.straggler_fraction, 0.1);
  EXPECT_DOUBLE_EQ(c.straggler_slowdown, 6.0);
  EXPECT_DOUBLE_EQ(c.deadline_slack, 2.0);
  EXPECT_EQ(c.open_max_width, 2);
  EXPECT_EQ(c.open_min_pages, 100);
  EXPECT_EQ(c.open_max_pages, 900);
  EXPECT_EQ(c.open_min_iterations, 3);
  EXPECT_EQ(c.open_max_iterations, 9);
}

// Registry fuzz: config validation resolves sched_policy through the policy
// registry, so mangled names must be rejected with a hint naming the valid
// set, and the dynamic-registration API must hold its invariants (no
// shadowing built-ins, duplicates rejected, teardown removes exactly the
// dynamic entry) no matter the registration order a test happens to use.

TEST(Scenario, UnknownSchedPolicyRejectedWithHint) {
  ExperimentConfig config;
  config.sched_policy = "lottery";
  try {
    config.validate();
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lottery"), std::string::npos) << what;
    for (const std::string& name : sched_policy_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(Scenario, FuzzedSchedPolicyNamesNeverValidateSilently) {
  // Seeded mutation fuzz: take valid names, mangle them (case flip, byte
  // twiddle, truncation, suffix), and check the registry either recognises
  // the exact original or throws — never accepts a near-miss.
  Rng rng(0xfeedface);
  const std::vector<std::string> names = sched_policy_names();
  auto index = [&rng](std::size_t size) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
  };
  for (int round = 0; round < 200; ++round) {
    std::string name = names[index(names.size())];
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip the case of one character
        name[index(name.size())] ^= 0x20;
        break;
      case 1:  // twiddle one byte out of the printable-lowercase range
        name[index(name.size())] =
            static_cast<char>(rng.uniform_int('{', '~'));
        break;
      case 2:  // truncate
        name.resize(index(name.size()));
        break;
      default:  // append a suffix
        name += static_cast<char>(rng.uniform_int('a', 'z'));
        break;
    }
    if (is_sched_policy(name)) {
      // The mangling happened to reproduce a registered name; fine.
      EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
          << name;
      continue;
    }
    EXPECT_THROW((void)make_sched_policy(name), std::invalid_argument) << name;
    ExperimentConfig config;
    config.sched_policy = name;
    EXPECT_THROW(config.validate(), std::invalid_argument) << name;
  }
}

TEST(Scenario, DynamicPolicyRegistrationLifecycle) {
  const auto before = sched_policy_names();
  // A dynamic registration becomes visible, resolvable and valid in configs.
  register_sched_policy("test-dynamic", [] { return make_sched_policy("matrix"); });
  EXPECT_TRUE(is_sched_policy("test-dynamic"));
  EXPECT_NE(make_sched_policy("test-dynamic"), nullptr);
  ExperimentConfig config;
  config.sched_policy = "test-dynamic";
  EXPECT_NO_THROW(config.validate());
  // Duplicates are rejected, for dynamic names and built-ins alike.
  EXPECT_THROW(register_sched_policy(
                   "test-dynamic", [] { return make_sched_policy("matrix"); }),
               std::invalid_argument);
  EXPECT_THROW(register_sched_policy(
                   "matrix", [] { return make_sched_policy("matrix"); }),
               std::invalid_argument);
  EXPECT_THROW(register_sched_policy(
                   "", [] { return make_sched_policy("matrix"); }),
               std::invalid_argument);
  // Teardown removes exactly the dynamic entry; built-ins are immovable.
  EXPECT_TRUE(unregister_sched_policy("test-dynamic"));
  EXPECT_FALSE(unregister_sched_policy("test-dynamic"));
  EXPECT_FALSE(unregister_sched_policy("matrix"));
  EXPECT_EQ(sched_policy_names(), before);
}

TEST(Scenario, OpenArrivalConfigRejectsBatchMode) {
  ExperimentConfig config;
  config.arrival_process = "poisson";
  config.batch_mode = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.batch_mode = false;
  EXPECT_NO_THROW(config.validate());
  config.arrival_process = "weibull";
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace apsim
